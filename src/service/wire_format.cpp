#include "service/wire_format.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

namespace mcp::wire {

namespace {

[[noreturn]] void fail_at(std::size_t offset, const std::string& why) {
  throw InputError("wire byte " + std::to_string(offset) + ": " + why);
}

[[nodiscard]] bool known_frame_type(std::uint32_t raw) noexcept {
  return raw >= static_cast<std::uint32_t>(FrameType::kSessionOpen) &&
         raw <= static_cast<std::uint32_t>(FrameType::kRequestRun);
}

/// Bounds an error reply's message on the wire (replies must stay small
/// even if an exception message is not).
constexpr std::size_t kMaxErrorMessage = 512;

void expect_payload(const FrameView& frame, std::size_t want,
                    const char* what) {
  if (frame.payload.size() != want) {
    throw InputError(std::string("wire: ") + what + " payload is " +
                     std::to_string(frame.payload.size()) + " bytes, expected " +
                     std::to_string(want));
  }
}

}  // namespace

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSharedLru: return "shared_lru";
    case StrategyKind::kSharedFifo: return "shared_fifo";
    case StrategyKind::kStaticEvenLru: return "static_even_lru";
    case StrategyKind::kStaticEvenFifo: return "static_even_fifo";
  }
  return "unknown";
}

// --- ChunkView --------------------------------------------------------------

ChunkView::ChunkView(const FrameView& frame) {
  MCP_REQUIRE(frame.type == FrameType::kRequestChunk,
              "ChunkView over a non-chunk frame");
  if (frame.payload.size() < 8) {
    throw InputError("wire: request chunk payload shorter than its header");
  }
  count_ = load_u32(frame.payload.data());
  if (frame.payload.size() != 8 + count_ * sizeof(WirePair)) {
    throw InputError("wire: request chunk declares " + std::to_string(count_) +
                     " pairs but carries " +
                     std::to_string(frame.payload.size()) + " payload bytes");
  }
  data_ = frame.payload.data() + 8;
}

// --- RunView ----------------------------------------------------------------

RunView::RunView(const FrameView& frame) {
  MCP_REQUIRE(frame.type == FrameType::kRequestRun,
              "RunView over a non-run frame");
  if (frame.payload.size() < 8) {
    throw InputError("wire: request run payload shorter than its header");
  }
  core_ = load_u32(frame.payload.data());
  count_ = load_u32(frame.payload.data() + 4);
  // count * 4 rounded up to the format's 8-byte alignment, exactly.
  const std::size_t body = ((count_ * 4 + 7) / 8) * 8;
  if (frame.payload.size() != 8 + body) {
    throw InputError("wire: request run declares " + std::to_string(count_) +
                     " pages but carries " +
                     std::to_string(frame.payload.size()) + " payload bytes");
  }
  data_ = frame.payload.data() + 8;
}

// --- WireWriter -------------------------------------------------------------

WireWriter::WireWriter() {
  buf_.resize(kMagicSize);
  std::memcpy(buf_.data(), kMagic.data(), kMagicSize);
}

std::size_t WireWriter::begin_frame(FrameType type, std::uint64_t session,
                                    std::size_t payload_len) {
  MCP_ASSERT(payload_len % 8 == 0);  // alignment invariant of the format
  const std::size_t header_at = buf_.size();
  buf_.resize(header_at + kFrameHeaderSize + payload_len);
  std::byte* h = buf_.data() + header_at;
  store_u32(h, static_cast<std::uint32_t>(type));
  store_u32(h + 4, static_cast<std::uint32_t>(payload_len));
  store_u64(h + 8, session);
  return header_at + kFrameHeaderSize;
}

void WireWriter::session_open(std::uint64_t session,
                              const SessionParams& params) {
  const std::size_t at = begin_frame(FrameType::kSessionOpen, session, 16);
  std::byte* p = buf_.data() + at;
  store_u32(p, params.num_cores);
  store_u32(p + 4, params.cache_size);
  store_u32(p + 8, params.fault_penalty);
  store_u32(p + 12, static_cast<std::uint32_t>(params.strategy));
}

void WireWriter::request_chunk(std::uint64_t session,
                               std::span<const WirePair> pairs) {
  const std::size_t at = begin_frame(FrameType::kRequestChunk, session,
                                     8 + pairs.size() * sizeof(WirePair));
  std::byte* p = buf_.data() + at;
  store_u32(p, static_cast<std::uint32_t>(pairs.size()));
  store_u32(p + 4, 0);  // reserved
  p += 8;
  for (const WirePair& pair : pairs) {
    store_u32(p, pair.core);
    store_u32(p + 4, pair.page);
    p += sizeof(WirePair);
  }
}

void WireWriter::request_chunk(std::uint64_t session, std::uint32_t core,
                               std::span<const PageId> pages) {
  const std::size_t at = begin_frame(FrameType::kRequestChunk, session,
                                     8 + pages.size() * sizeof(WirePair));
  std::byte* p = buf_.data() + at;
  store_u32(p, static_cast<std::uint32_t>(pages.size()));
  store_u32(p + 4, 0);
  p += 8;
  for (PageId page : pages) {
    store_u32(p, core);
    store_u32(p + 4, static_cast<std::uint32_t>(page));
    p += sizeof(WirePair);
  }
}

void WireWriter::request_run(std::uint64_t session, std::uint32_t core,
                             std::span<const PageId> pages) {
  const std::size_t body = ((pages.size() * 4 + 7) / 8) * 8;
  const std::size_t at =
      begin_frame(FrameType::kRequestRun, session, 8 + body);
  std::byte* p = buf_.data() + at;
  store_u32(p, core);
  store_u32(p + 4, static_cast<std::uint32_t>(pages.size()));
  p += 8;
  for (PageId page : pages) {
    store_u32(p, static_cast<std::uint32_t>(page));
    p += 4;
  }
  if (pages.size() % 2 != 0) store_u32(p, 0);  // alignment pad
}

void WireWriter::session_close(std::uint64_t session) {
  begin_frame(FrameType::kSessionClose, session, 0);
}

void WireWriter::query_faults(std::uint64_t session, std::uint64_t query_id) {
  const std::size_t at = begin_frame(FrameType::kQueryFaults, session, 16);
  std::byte* p = buf_.data() + at;
  store_u64(p, query_id);
  store_u32(p + 8, 0);
  store_u32(p + 12, 0);
}

void WireWriter::query_fault_curve(std::uint64_t session,
                                   std::uint64_t query_id,
                                   std::uint32_t max_k) {
  const std::size_t at = begin_frame(FrameType::kQueryFaultCurve, session, 16);
  std::byte* p = buf_.data() + at;
  store_u64(p, query_id);
  store_u32(p + 8, max_k);
  store_u32(p + 12, 0);
}

void WireWriter::query_partition(std::uint64_t session,
                                 std::uint64_t query_id) {
  const std::size_t at = begin_frame(FrameType::kQueryPartition, session, 16);
  std::byte* p = buf_.data() + at;
  store_u64(p, query_id);
  store_u32(p + 8, 0);
  store_u32(p + 12, 0);
}

void WireWriter::fault_counts(std::uint64_t session,
                              const FaultCountsReply& reply) {
  MCP_REQUIRE(reply.per_core_faults.size() == reply.completion_times.size(),
              "fault_counts: per-core vectors disagree");
  const std::size_t cores = reply.per_core_faults.size();
  // u64 query_id, u32 finished, u32 cores, u64 requests_served, u64 end_time,
  // then cores x (u64 faults, u64 completion_time).
  const std::size_t at = begin_frame(FrameType::kFaultCounts, session,
                                     32 + cores * 16);
  std::byte* p = buf_.data() + at;
  store_u64(p, reply.query_id);
  store_u32(p + 8, reply.finished ? 1 : 0);
  store_u32(p + 12, static_cast<std::uint32_t>(cores));
  store_u64(p + 16, reply.requests_served);
  store_u64(p + 24, reply.end_time);
  p += 32;
  for (std::size_t j = 0; j < cores; ++j) {
    store_u64(p, reply.per_core_faults[j]);
    store_u64(p + 8, reply.completion_times[j]);
    p += 16;
  }
}

void WireWriter::fault_curve(std::uint64_t session,
                             const FaultCurveReply& reply) {
  const std::size_t cores = reply.curves.size();
  const std::size_t points = static_cast<std::size_t>(reply.max_k) + 1;
  for (const auto& curve : reply.curves) {
    MCP_REQUIRE(curve.size() == points, "fault_curve: ragged curve matrix");
  }
  // u64 query_id, u32 max_k, u32 cores, then cores x points x u64.
  const std::size_t at = begin_frame(FrameType::kFaultCurve, session,
                                     16 + cores * points * 8);
  std::byte* p = buf_.data() + at;
  store_u64(p, reply.query_id);
  store_u32(p + 8, reply.max_k);
  store_u32(p + 12, static_cast<std::uint32_t>(cores));
  p += 16;
  for (const auto& curve : reply.curves) {
    for (Count value : curve) {
      store_u64(p, value);
      p += 8;
    }
  }
}

void WireWriter::partition_advice(std::uint64_t session,
                                  const PartitionAdviceReply& reply) {
  const std::size_t cores = reply.cells_per_core.size();
  const std::size_t cells_bytes = (cores * 4 + 7) / 8 * 8;  // pad to 8
  // u64 query_id, u64 predicted_faults, u32 cores, u32 reserved,
  // then cores x u32 (padded to a multiple of 8 bytes).
  const std::size_t at = begin_frame(FrameType::kPartitionAdvice, session,
                                     24 + cells_bytes);
  std::byte* p = buf_.data() + at;
  store_u64(p, reply.query_id);
  store_u64(p + 8, reply.predicted_faults);
  store_u32(p + 16, static_cast<std::uint32_t>(cores));
  store_u32(p + 20, 0);
  p += 24;
  std::memset(p, 0, cells_bytes);
  for (std::size_t j = 0; j < cores; ++j) {
    store_u32(p + j * 4, reply.cells_per_core[j]);
  }
}

void WireWriter::error_reply(std::uint64_t session, const ErrorReply& reply) {
  const std::size_t msg_len =
      std::min(reply.message.size(), kMaxErrorMessage);
  const std::size_t padded = (msg_len + 7) / 8 * 8;
  // u64 query_id, u32 msg_len, u32 reserved, msg bytes zero-padded to 8.
  const std::size_t at = begin_frame(FrameType::kError, session, 16 + padded);
  std::byte* p = buf_.data() + at;
  store_u64(p, reply.query_id);
  store_u32(p + 8, static_cast<std::uint32_t>(msg_len));
  store_u32(p + 12, 0);
  std::memset(p + 16, 0, padded);
  std::memcpy(p + 16, reply.message.data(), msg_len);
}

// --- WireReader / parse_frame -----------------------------------------------

WireReader::WireReader(std::span<const std::byte> data) : data_(data) {
  if (data_.size() < kMagicSize ||
      std::memcmp(data_.data(), kMagic.data(), kMagicSize) != 0) {
    fail_at(0, "bad magic, expected \"MCPWIRE1\"");
  }
  pos_ = kMagicSize;
}

bool WireReader::next(FrameView& frame) {
  if (pos_ == data_.size()) return false;
  if (data_.size() - pos_ < kFrameHeaderSize) {
    fail_at(pos_, "truncated frame header (" +
                      std::to_string(data_.size() - pos_) + " bytes left)");
  }
  frame = parse_frame(data_.subspan(pos_), pos_);
  pos_ += kFrameHeaderSize + frame.payload.size();
  return true;
}

FrameView parse_frame(std::span<const std::byte> bytes,
                      std::size_t offset_in_doc) {
  if (bytes.size() < kFrameHeaderSize) {
    fail_at(offset_in_doc, "truncated frame header");
  }
  const std::uint32_t raw_type = load_u32(bytes.data());
  const std::uint32_t payload_len = load_u32(bytes.data() + 4);
  if (!known_frame_type(raw_type)) {
    fail_at(offset_in_doc,
            "unknown frame type " + std::to_string(raw_type));
  }
  if (payload_len % 8 != 0) {
    fail_at(offset_in_doc, "payload length " + std::to_string(payload_len) +
                               " is not a multiple of 8");
  }
  if (bytes.size() - kFrameHeaderSize < payload_len) {
    fail_at(offset_in_doc,
            "frame payload of " + std::to_string(payload_len) +
                " bytes overruns the buffer (" +
                std::to_string(bytes.size() - kFrameHeaderSize) + " left)");
  }
  FrameView frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.session = load_u64(bytes.data() + 8);
  frame.payload = bytes.subspan(kFrameHeaderSize, payload_len);
  return frame;
}

// --- payload decoders -------------------------------------------------------

SessionParams decode_session_open(const FrameView& frame) {
  expect_payload(frame, 16, "session open");
  const std::byte* p = frame.payload.data();
  SessionParams params;
  params.num_cores = load_u32(p);
  params.cache_size = load_u32(p + 4);
  params.fault_penalty = load_u32(p + 8);
  const std::uint32_t raw = load_u32(p + 12);
  if (raw > static_cast<std::uint32_t>(StrategyKind::kStaticEvenFifo)) {
    throw InputError("wire: unknown strategy kind " + std::to_string(raw));
  }
  params.strategy = static_cast<StrategyKind>(raw);
  if (params.num_cores == 0) throw InputError("wire: session with 0 cores");
  if (params.num_cores > kMaxWireCores) {
    throw InputError("wire: session with " + std::to_string(params.num_cores) +
                     " cores exceeds the spec bound of " +
                     std::to_string(kMaxWireCores));
  }
  if (params.cache_size == 0) {
    throw InputError("wire: session with 0 cache cells");
  }
  if (params.cache_size > kMaxWireCacheCells) {
    throw InputError("wire: session with " + std::to_string(params.cache_size) +
                     " cache cells exceeds the spec bound of " +
                     std::to_string(kMaxWireCacheCells));
  }
  return params;
}

QueryView decode_query(const FrameView& frame) {
  expect_payload(frame, 16, "query");
  const std::byte* p = frame.payload.data();
  return QueryView{load_u64(p), load_u32(p + 8)};
}

FaultCountsReply decode_fault_counts(const FrameView& frame) {
  if (frame.payload.size() < 32) {
    throw InputError("wire: fault counts payload shorter than its header");
  }
  const std::byte* p = frame.payload.data();
  FaultCountsReply reply;
  reply.query_id = load_u64(p);
  reply.finished = load_u32(p + 8) != 0;
  const std::uint32_t cores = load_u32(p + 12);
  reply.requests_served = load_u64(p + 16);
  reply.end_time = load_u64(p + 24);
  expect_payload(frame, 32 + static_cast<std::size_t>(cores) * 16,
                 "fault counts");
  p += 32;
  reply.per_core_faults.resize(cores);
  reply.completion_times.resize(cores);
  for (std::uint32_t j = 0; j < cores; ++j) {
    reply.per_core_faults[j] = load_u64(p);
    reply.completion_times[j] = load_u64(p + 8);
    p += 16;
  }
  return reply;
}

FaultCurveReply decode_fault_curve(const FrameView& frame) {
  if (frame.payload.size() < 16) {
    throw InputError("wire: fault curve payload shorter than its header");
  }
  const std::byte* p = frame.payload.data();
  FaultCurveReply reply;
  reply.query_id = load_u64(p);
  reply.max_k = load_u32(p + 8);
  const std::uint32_t cores = load_u32(p + 12);
  // Bound both factors before sizing anything from them: the expected-length
  // product must not overflow, and a hostile header must not trigger a huge
  // resize that the subsequent length check would otherwise reject too late.
  if (cores > kMaxWireCores || reply.max_k >= (1u << 24)) {
    throw InputError("wire: fault curve header exceeds spec bounds");
  }
  const std::size_t points = static_cast<std::size_t>(reply.max_k) + 1;
  expect_payload(frame, 16 + static_cast<std::size_t>(cores) * points * 8,
                 "fault curve");
  p += 16;
  reply.curves.resize(cores);
  for (auto& curve : reply.curves) {
    curve.resize(points);
    for (Count& value : curve) {
      value = load_u64(p);
      p += 8;
    }
  }
  return reply;
}

PartitionAdviceReply decode_partition_advice(const FrameView& frame) {
  if (frame.payload.size() < 24) {
    throw InputError("wire: partition advice payload shorter than its header");
  }
  const std::byte* p = frame.payload.data();
  PartitionAdviceReply reply;
  reply.query_id = load_u64(p);
  reply.predicted_faults = load_u64(p + 8);
  const std::uint32_t cores = load_u32(p + 16);
  const std::size_t cells_bytes =
      (static_cast<std::size_t>(cores) * 4 + 7) / 8 * 8;
  expect_payload(frame, 24 + cells_bytes, "partition advice");
  p += 24;
  reply.cells_per_core.resize(cores);
  for (std::uint32_t j = 0; j < cores; ++j) {
    reply.cells_per_core[j] = load_u32(p + j * 4);
  }
  return reply;
}

ErrorReply decode_error(const FrameView& frame) {
  if (frame.payload.size() < 16) {
    throw InputError("wire: error reply payload shorter than its header");
  }
  const std::byte* p = frame.payload.data();
  ErrorReply reply;
  reply.query_id = load_u64(p);
  const std::uint32_t msg_len = load_u32(p + 8);
  const std::size_t padded = (static_cast<std::size_t>(msg_len) + 7) / 8 * 8;
  expect_payload(frame, 16 + padded, "error reply");
  reply.message.assign(reinterpret_cast<const char*>(p + 16), msg_len);
  return reply;
}

// --- trace conversion -------------------------------------------------------

std::vector<std::byte> encode_trace(const RequestSet& requests,
                                    std::uint64_t session,
                                    const SessionParams& params,
                                    std::size_t chunk_pairs) {
  MCP_REQUIRE(chunk_pairs > 0, "encode_trace: chunk_pairs must be positive");
  MCP_REQUIRE(params.num_cores == requests.num_cores(),
              "encode_trace: params.num_cores does not match the trace");
  WireWriter writer;
  writer.session_open(session, params);
  // Interleave cores chunk-by-chunk (round-robin) so a chunked consumer
  // exercises realistic multi-core arrival order; each core's own order is
  // preserved, which is all the model semantics depend on.
  const std::size_t p = requests.num_cores();
  std::vector<std::size_t> cursor(p, 0);
  bool emitted = true;
  while (emitted) {
    emitted = false;
    for (CoreId core = 0; core < p; ++core) {
      const RequestSequence& seq = requests.sequence(core);
      if (cursor[core] >= seq.size()) continue;
      const std::size_t n =
          std::min(chunk_pairs, seq.size() - cursor[core]);
      writer.request_chunk(session, static_cast<std::uint32_t>(core),
                           seq.pages().subspan(cursor[core], n));
      cursor[core] += n;
      emitted = true;
    }
  }
  writer.session_close(session);
  return std::move(writer).take();
}

DecodedTrace decode_trace(std::span<const std::byte> data) {
  WireReader reader(data);
  DecodedTrace out;
  bool opened = false;
  std::vector<std::vector<PageId>> seqs;
  FrameView frame;
  while (reader.next(frame)) {
    if (!opened) {
      if (frame.type != FrameType::kSessionOpen) {
        throw InputError("wire: document does not start with a session open");
      }
      out.session = frame.session;
      out.params = decode_session_open(frame);
      seqs.resize(out.params.num_cores);
      opened = true;
      continue;
    }
    if (frame.session != out.session) {
      throw InputError("wire: decode_trace on a multi-session document");
    }
    if (out.closed) {
      throw InputError("wire: frame after session close");
    }
    switch (frame.type) {
      case FrameType::kRequestChunk: {
        const ChunkView chunk(frame);
        for (std::size_t i = 0; i < chunk.size(); ++i) {
          const WirePair pair = chunk.pair(i);
          if (pair.core >= seqs.size()) {
            throw InputError("wire: request pair core " +
                             std::to_string(pair.core) + " out of range");
          }
          seqs[pair.core].push_back(pair.page);
        }
        break;
      }
      case FrameType::kRequestRun: {
        const RunView run(frame);
        if (run.core() >= seqs.size()) {
          throw InputError("wire: request run core " +
                           std::to_string(run.core()) + " out of range");
        }
        std::vector<PageId>& seq = seqs[run.core()];
        seq.reserve(seq.size() + run.size());
        for (std::size_t i = 0; i < run.size(); ++i) {
          seq.push_back(run.page(i));
        }
        break;
      }
      case FrameType::kSessionClose:
        out.closed = true;
        break;
      case FrameType::kSessionOpen:
        throw InputError("wire: duplicate session open");
      default:
        throw InputError("wire: unexpected frame type " +
                         std::to_string(static_cast<std::uint32_t>(frame.type)) +
                         " in a trace document");
    }
  }
  if (!opened) throw InputError("wire: empty document (no session open)");
  std::vector<RequestSequence> sequences;
  sequences.reserve(seqs.size());
  for (auto& pages : seqs) sequences.emplace_back(std::move(pages));
  out.requests = RequestSet(std::move(sequences));
  return out;
}

void save_wire_trace(const std::string& path, const RequestSet& requests,
                     std::uint64_t session, const SessionParams& params,
                     std::size_t chunk_pairs) {
  const std::vector<std::byte> bytes =
      encode_trace(requests, session, params, chunk_pairs);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw InputError("cannot open for writing: " + path);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) throw InputError("write failed: " + path);
}

DecodedTrace load_wire_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw InputError("cannot open for reading: " + path);
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!is) throw InputError("read failed: " + path);
  return decode_trace(bytes);
}

}  // namespace mcp::wire
