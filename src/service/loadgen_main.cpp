// mcpd-loadgen — drives src/service/loadgen.hpp from the command line and
// emits google-benchmark-shaped JSON so scripts/check_perf_regression.py
// can gate the service baselines (bench/baseline/BENCH_MCPD.json).
//
//   mcpd-loadgen [--shards=1,2,4,8] [--tenants=32] [--producers=2]
//                [--repetitions=3] [--requests=2048] [--cores=4]
//                [--cache=64] [--chunk=256] [--seed=N] [--homogeneous]
//
// For each shard count the loadgen runs `repetitions` full passes and
// reports the median of every counter as one aggregate benchmark entry
// named `<scenario>/shards/<n>`.  Repetitions interleave the scenarios
// (rep r of every scenario runs back-to-back) so machine-speed drift
// lands on both sides of any cross-scenario ratio, not on one scenario's
// whole sample set.  The default scenario, `mcpd_loadgen`, is
// the mixed-strategy replay (batching on).  `--homogeneous` adds two more:
// `mcpd_homogeneous` (identical tenants, batching on — the cohort
// scheduler's best case) and `mcpd_homogeneous_scalar` (same tenants,
// batching off — the scalar baseline the ≥3x acceptance gate compares
// against).  The determinism checksum (total_faults) must agree across all
// runs and shard counts of a tenant mix — in particular the batched and
// scalar homogeneous scenarios must agree with each other, which is a
// built-in batched-vs-scalar differential; the tool fails loudly if not.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "service/loadgen.hpp"

namespace {

using mcp::service::LoadgenConfig;
using mcp::service::LoadgenResult;
using mcp::service::TenantMix;

[[nodiscard]] std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> values;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    if (comma > pos) {
      values.push_back(
          static_cast<std::size_t>(std::stoull(csv.substr(pos, comma - pos))));
    }
    pos = comma + 1;
  }
  if (values.empty()) throw mcp::InputError("empty shard list");
  return values;
}

[[nodiscard]] bool parse_flag(const char* arg, const char* name,
                              std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

[[nodiscard]] double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// One benchmark scenario: a named (tenant mix, batching) combination.
struct Scenario {
  const char* name;
  TenantMix mix;
  bool batching;
};

void print_entry(bool first, const Scenario& scenario, std::size_t shards,
                 std::size_t iterations, double wall_s, double rps,
                 double capacity, double p50_ns, double p99_ns,
                 const LoadgenResult& last) {
  std::printf("%s    {\n", first ? "" : ",\n");
  std::printf("      \"name\": \"%s/shards/%zu_median\",\n", scenario.name,
              shards);
  std::printf("      \"run_name\": \"%s/shards/%zu\",\n", scenario.name,
              shards);
  std::printf("      \"run_type\": \"aggregate\",\n");
  std::printf("      \"aggregate_name\": \"median\",\n");
  std::printf("      \"iterations\": %zu,\n", iterations);
  std::printf("      \"real_time\": %.6e,\n", wall_s * 1e9);
  std::printf("      \"cpu_time\": %.6e,\n", wall_s * 1e9);
  std::printf("      \"time_unit\": \"ns\",\n");
  std::printf("      \"requests_per_sec\": %.6e,\n", rps);
  std::printf("      \"capacity_rps\": %.6e,\n", capacity);
  std::printf("      \"epoch_p50_ns\": %.6e,\n", p50_ns);
  std::printf("      \"epoch_p99_ns\": %.6e,\n", p99_ns);
  std::printf("      \"batched_sessions\": %llu,\n",
              static_cast<unsigned long long>(last.batched_sessions));
  std::printf("      \"scalar_sessions\": %llu,\n",
              static_cast<unsigned long long>(last.scalar_sessions));
  std::printf("      \"lane_steps\": %llu,\n",
              static_cast<unsigned long long>(last.lane_steps));
  std::printf("      \"total_faults\": %llu\n",
              static_cast<unsigned long long>(last.total_faults));
  std::printf("    }");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::size_t repetitions = 3;
  bool homogeneous = false;
  LoadgenConfig base;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    try {
      if (parse_flag(argv[i], "--shards", value)) {
        shard_counts = parse_list(value);
      } else if (parse_flag(argv[i], "--tenants", value)) {
        base.tenants = std::stoull(value);
      } else if (parse_flag(argv[i], "--producers", value)) {
        base.producers = std::stoull(value);
      } else if (parse_flag(argv[i], "--repetitions", value)) {
        repetitions = std::stoull(value);
      } else if (parse_flag(argv[i], "--requests", value)) {
        base.requests_per_core = std::stoull(value);
      } else if (parse_flag(argv[i], "--cores", value)) {
        base.cores_per_tenant = std::stoull(value);
      } else if (parse_flag(argv[i], "--cache", value)) {
        base.cache_size = std::stoull(value);
      } else if (parse_flag(argv[i], "--chunk", value)) {
        base.chunk_pairs = std::stoull(value);
      } else if (parse_flag(argv[i], "--seed", value)) {
        base.seed = std::stoull(value);
      } else if (std::strcmp(argv[i], "--homogeneous") == 0) {
        homogeneous = true;
      } else {
        std::fprintf(stderr, "mcpd-loadgen: unknown argument %s\n", argv[i]);
        return 2;
      }
    } catch (const std::exception& err) {
      std::fprintf(stderr, "mcpd-loadgen: bad argument %s (%s)\n", argv[i],
                   err.what());
      return 2;
    }
  }
  if (repetitions == 0) repetitions = 1;

  std::vector<Scenario> scenarios = {
      {"mcpd_loadgen", TenantMix::kMixed, true}};
  if (homogeneous) {
    scenarios.push_back({"mcpd_homogeneous", TenantMix::kHomogeneous, true});
    scenarios.push_back(
        {"mcpd_homogeneous_scalar", TenantMix::kHomogeneous, false});
  }

  std::printf("{\n  \"context\": {\n");
  std::printf("    \"executable\": \"mcpd-loadgen\",\n");
  std::printf("    \"tenants\": %zu,\n", base.tenants);
  std::printf("    \"producers\": %zu,\n", base.producers);
  std::printf("    \"cores_per_tenant\": %zu,\n", base.cores_per_tenant);
  std::printf("    \"requests_per_core\": %zu,\n", base.requests_per_core);
  std::printf("    \"cache_size\": %zu,\n", base.cache_size);
  std::printf("    \"chunk_pairs\": %zu\n", base.chunk_pairs);
  std::printf("  },\n  \"benchmarks\": [\n");

  // One checksum per tenant mix: every run of a mix — any shard count, any
  // repetition, batched or scalar — must produce identical total faults.
  std::uint64_t checksum[2] = {0, 0};
  bool have_checksum[2] = {false, false};

  // Repetitions are the outer loop and scenarios the inner one, so rep r
  // of every scenario runs back-to-back: a machine-speed drift (thermal
  // throttle, co-tenant burst) lands on the same repetition of both sides
  // of a ratio — in particular the batched/scalar homogeneous pair —
  // instead of depressing one scenario's whole sample set.
  struct Samples {
    std::vector<double> wall, rps, capacity, p50, p99;
    LoadgenResult last;
  };
  std::vector<Samples> samples(scenarios.size() * shard_counts.size());
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      for (std::size_t ci = 0; ci < scenarios.size(); ++ci) {
        const Scenario& scenario = scenarios[ci];
        const std::size_t mix = static_cast<std::size_t>(scenario.mix);
        LoadgenConfig config = base;
        config.num_shards = shard_counts[si];
        config.mix = scenario.mix;
        config.enable_batching = scenario.batching;
        LoadgenResult result;
        try {
          result = mcp::service::run_loadgen(config);
        } catch (const std::exception& err) {
          std::fprintf(stderr, "mcpd-loadgen: run failed: %s\n", err.what());
          return 1;
        }
        Samples& cell = samples[ci * shard_counts.size() + si];
        cell.wall.push_back(result.wall_seconds);
        cell.rps.push_back(result.requests_per_sec);
        cell.capacity.push_back(result.capacity_rps);
        cell.p50.push_back(static_cast<double>(result.epoch_latency.p50()));
        cell.p99.push_back(static_cast<double>(result.epoch_latency.p99()));
        if (!have_checksum[mix]) {
          checksum[mix] = result.total_faults;
          have_checksum[mix] = true;
        } else if (checksum[mix] != result.total_faults) {
          std::fprintf(stderr,
                       "mcpd-loadgen: DETERMINISM VIOLATION: fault checksum "
                       "%llu != %llu across runs (%s)\n",
                       static_cast<unsigned long long>(result.total_faults),
                       static_cast<unsigned long long>(checksum[mix]),
                       scenario.name);
          return 1;
        }
        cell.last = std::move(result);
      }
    }
  }

  bool first = true;
  for (std::size_t ci = 0; ci < scenarios.size(); ++ci) {
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      const Samples& cell = samples[ci * shard_counts.size() + si];
      print_entry(first, scenarios[ci], shard_counts[si], repetitions,
                  median_of(cell.wall), median_of(cell.rps),
                  median_of(cell.capacity), median_of(cell.p50),
                  median_of(cell.p99), cell.last);
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
