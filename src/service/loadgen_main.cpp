// mcpd-loadgen — drives src/service/loadgen.hpp from the command line and
// emits google-benchmark-shaped JSON so scripts/check_perf_regression.py
// can gate the service baselines (bench/baseline/BENCH_MCPD.json).
//
//   mcpd-loadgen [--shards=1,2,4,8] [--tenants=32] [--producers=2]
//                [--repetitions=3] [--requests=2048] [--cores=4]
//                [--cache=64] [--chunk=256] [--seed=N]
//
// For each shard count the loadgen runs `repetitions` full passes and
// reports the median of every counter as one aggregate benchmark entry
// named `mcpd_loadgen/shards/<n>`.  The determinism checksum
// (total_faults) must agree across all runs and shard counts; the tool
// fails loudly if it does not.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "service/loadgen.hpp"

namespace {

using mcp::service::LoadgenConfig;
using mcp::service::LoadgenResult;

[[nodiscard]] std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> values;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    if (comma > pos) {
      values.push_back(
          static_cast<std::size_t>(std::stoull(csv.substr(pos, comma - pos))));
    }
    pos = comma + 1;
  }
  if (values.empty()) throw mcp::InputError("empty shard list");
  return values;
}

[[nodiscard]] bool parse_flag(const char* arg, const char* name,
                              std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

[[nodiscard]] double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

void print_entry(bool first, std::size_t shards, std::size_t iterations,
                 double wall_s, double rps, double capacity,
                 double p50_ns, double p99_ns, std::uint64_t faults) {
  std::printf("%s    {\n", first ? "" : ",\n");
  std::printf("      \"name\": \"mcpd_loadgen/shards/%zu_median\",\n", shards);
  std::printf("      \"run_name\": \"mcpd_loadgen/shards/%zu\",\n", shards);
  std::printf("      \"run_type\": \"aggregate\",\n");
  std::printf("      \"aggregate_name\": \"median\",\n");
  std::printf("      \"iterations\": %zu,\n", iterations);
  std::printf("      \"real_time\": %.6e,\n", wall_s * 1e9);
  std::printf("      \"cpu_time\": %.6e,\n", wall_s * 1e9);
  std::printf("      \"time_unit\": \"ns\",\n");
  std::printf("      \"requests_per_sec\": %.6e,\n", rps);
  std::printf("      \"capacity_rps\": %.6e,\n", capacity);
  std::printf("      \"epoch_p50_ns\": %.6e,\n", p50_ns);
  std::printf("      \"epoch_p99_ns\": %.6e,\n", p99_ns);
  std::printf("      \"total_faults\": %llu\n",
              static_cast<unsigned long long>(faults));
  std::printf("    }");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::size_t repetitions = 3;
  LoadgenConfig base;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    try {
      if (parse_flag(argv[i], "--shards", value)) {
        shard_counts = parse_list(value);
      } else if (parse_flag(argv[i], "--tenants", value)) {
        base.tenants = std::stoull(value);
      } else if (parse_flag(argv[i], "--producers", value)) {
        base.producers = std::stoull(value);
      } else if (parse_flag(argv[i], "--repetitions", value)) {
        repetitions = std::stoull(value);
      } else if (parse_flag(argv[i], "--requests", value)) {
        base.requests_per_core = std::stoull(value);
      } else if (parse_flag(argv[i], "--cores", value)) {
        base.cores_per_tenant = std::stoull(value);
      } else if (parse_flag(argv[i], "--cache", value)) {
        base.cache_size = std::stoull(value);
      } else if (parse_flag(argv[i], "--chunk", value)) {
        base.chunk_pairs = std::stoull(value);
      } else if (parse_flag(argv[i], "--seed", value)) {
        base.seed = std::stoull(value);
      } else {
        std::fprintf(stderr, "mcpd-loadgen: unknown argument %s\n", argv[i]);
        return 2;
      }
    } catch (const std::exception& err) {
      std::fprintf(stderr, "mcpd-loadgen: bad argument %s (%s)\n", argv[i],
                   err.what());
      return 2;
    }
  }
  if (repetitions == 0) repetitions = 1;

  std::printf("{\n  \"context\": {\n");
  std::printf("    \"executable\": \"mcpd-loadgen\",\n");
  std::printf("    \"tenants\": %zu,\n", base.tenants);
  std::printf("    \"producers\": %zu,\n", base.producers);
  std::printf("    \"cores_per_tenant\": %zu,\n", base.cores_per_tenant);
  std::printf("    \"requests_per_core\": %zu,\n", base.requests_per_core);
  std::printf("    \"cache_size\": %zu,\n", base.cache_size);
  std::printf("    \"chunk_pairs\": %zu\n", base.chunk_pairs);
  std::printf("  },\n  \"benchmarks\": [\n");

  std::uint64_t checksum = 0;
  bool have_checksum = false;
  bool first = true;
  for (const std::size_t shards : shard_counts) {
    std::vector<double> wall, rps, capacity, p50, p99;
    std::uint64_t faults = 0;
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      LoadgenConfig config = base;
      config.num_shards = shards;
      LoadgenResult result;
      try {
        result = mcp::service::run_loadgen(config);
      } catch (const std::exception& err) {
        std::fprintf(stderr, "mcpd-loadgen: run failed: %s\n", err.what());
        return 1;
      }
      wall.push_back(result.wall_seconds);
      rps.push_back(result.requests_per_sec);
      capacity.push_back(result.capacity_rps);
      p50.push_back(static_cast<double>(result.epoch_latency.p50()));
      p99.push_back(static_cast<double>(result.epoch_latency.p99()));
      faults = result.total_faults;
      if (!have_checksum) {
        checksum = result.total_faults;
        have_checksum = true;
      } else if (checksum != result.total_faults) {
        std::fprintf(stderr,
                     "mcpd-loadgen: DETERMINISM VIOLATION: fault checksum "
                     "%llu != %llu across runs\n",
                     static_cast<unsigned long long>(result.total_faults),
                     static_cast<unsigned long long>(checksum));
        return 1;
      }
    }
    print_entry(first, shards, repetitions, median_of(wall), median_of(rps),
                median_of(capacity), median_of(p50), median_of(p99), faults);
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
