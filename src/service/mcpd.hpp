// mcpd — the sharded multi-tenant paging-advisory daemon.
//
// Architecture (docs/MCPD.md):
//
//   clients ──frames──▶ Mcpd::submit ──hash(session)──▶ shard s
//                                                        │ MpscQueue ingress
//                                                        ▼
//                                           Shard worker thread (1 per shard)
//                                           epoch loop: drain → step → publish
//                                                        │
//   clients ◀──response frames── ResponseMailbox ◀───────┘
//
// Each shard owns the sessions hashed to it outright — no session state is
// shared between shards, so the only cross-thread traffic is the lock-free
// ingress queue and the response mailboxes.  A shard runs an *epoch* per
// wakeup: it drains every queued frame, steps each touched session as far
// as the buffered requests allow, then publishes one batch of responses.
// Identically-configured sessions (same strategy, p, K, tau) are grouped
// into per-shard *cohorts* stepped in lockstep by one SoA BatchEngine per
// group (docs/MCPD.md "Cohort scheduler"); the rest run a scalar
// SimSession.  Both paths execute the same resumable step semantics the
// library's Simulator::run uses — per-session results are bit-identical to
// a direct simulate() of the full trace, regardless of shard count, cohort
// composition or arrival interleaving.  Queries (fault counts, LRU fault
// curves via the Mattson kernel, partition advice) are answered when the
// session finishes — the only point at which the answer is independent of
// arrival timing.
//
// Transport is in-process loopback: a "frame" is bytes in the mcpwire
// format (wire_format.hpp) and delivery is a queue push.  A socket front
// end would sit entirely outside this file, decoding to the same frames.
//
// Static analysis: the daemon is deliberately mutex-free, so Clang's
// capability analysis has nothing to hold here (core/annotations.hpp
// documents when that applies).  Its concurrency discipline is checked two
// other ways: (1) session/cohort maps are *thread-confined* to their
// shard's worker thread — they are looked up, never iterated, and
// mcp_verify.py rule `unordered-iter` keeps hash order out of the response
// path; (2) every cross-thread handshake below (ingress pending_, stop_,
// mailbox delivered_) is an explicit-memory_order atomic, enforced by rule
// `atomic-order` over src/service.  The comments on each atomic field name
// the protocol it implements; the tsan-full CI job checks the claims
// dynamically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/simulator.hpp"
#include "core/stats.hpp"
#include "service/mpsc_queue.hpp"
#include "service/wire_format.hpp"

namespace mcp::service {

/// One response frame travelling shard -> client: a complete single-frame
/// mcpwire document (magic + frame).
struct ResponseMsg : MpscHook {
  std::vector<std::byte> doc;
};

/// A client's reply inbox.  Any shard may deliver into it concurrently;
/// exactly one client thread consumes.  wait() blocks via atomic wait —
/// no mutex, no condition variable.
class ResponseMailbox {
 public:
  ResponseMailbox() = default;
  ~ResponseMailbox();

  /// Called by shard threads.  Takes ownership of the bytes.
  void deliver(std::vector<std::byte> doc);

  /// Non-blocking: pops one response document if available.
  [[nodiscard]] std::optional<std::vector<std::byte>> try_pop();

  /// Blocks until a response is available, then pops it.
  [[nodiscard]] std::vector<std::byte> wait();

 private:
  MpscQueue<ResponseMsg> queue_;
  std::atomic<std::uint64_t> delivered_{0};
  std::uint64_t taken_ = 0;  // consumer-owned
};

/// One ingress message: a view of a single frame inside a client-owned
/// document.  The shared_ptr keeps the bytes alive across the queue — the
/// shard parses the frame in place, so a request chunk is never copied
/// between client and simulator feed.
struct IngressMsg : MpscHook {
  std::shared_ptr<const std::vector<std::byte>> doc;
  std::size_t offset = 0;  ///< Frame start within *doc.
  std::size_t length = 0;  ///< Header + payload bytes.
  /// Where replies to this frame's queries go.  Shared ownership keeps the
  /// mailbox alive while the frame is queued; parked queries then downgrade
  /// to a weak_ptr, so a client may be destroyed with queries outstanding —
  /// its replies are dropped, never delivered into freed memory.
  std::shared_ptr<ResponseMailbox> reply_to;
};

/// Counters a shard accumulates over its lifetime.  Snapshots are safe
/// only after Mcpd::stop() (the worker thread owns them while running).
struct ShardStats {
  std::uint64_t frames = 0;         ///< Ingress frames processed.
  std::uint64_t pairs = 0;          ///< Request pairs ingested.
  std::uint64_t epochs = 0;         ///< Wakeups that processed >= 1 frame.
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_finished = 0;
  std::uint64_t batched_sessions = 0;  ///< Opened onto a cohort lane.
  std::uint64_t scalar_sessions = 0;   ///< Opened onto a scalar SimSession.
  std::uint64_t lane_steps = 0;        ///< Cohort lockstep iterations run.
  std::uint64_t bad_frames = 0;     ///< Malformed/out-of-protocol, dropped.
  std::uint64_t busy_ns = 0;        ///< CLOCK_THREAD_CPUTIME_ID spent in epochs.
  LatencyHistogram epoch_latency;   ///< Wall ns per epoch (drain->publish).
};

/// Daemon configuration.
struct McpdConfig {
  std::size_t num_shards = 1;
  /// Queries arriving before a session finishes park inside the session;
  /// at most this many may be parked (guards a client leak).
  std::size_t max_parked_queries = 1024;
  /// Group batchable sessions into per-shard cohorts stepped by the SoA
  /// BatchEngine (docs/MCPD.md "Cohort scheduler").  Per-session results
  /// are bit-identical either way; off forces the scalar SimSession path
  /// (the differential oracle and the loadgen baseline).
  bool enable_batching = true;
};

class Shard;

/// The daemon: owns `num_shards` shards, each with a dedicated worker
/// thread, and routes frames to shards by session-id hash.
class Mcpd {
 public:
  explicit Mcpd(McpdConfig config);
  ~Mcpd();

  Mcpd(const Mcpd&) = delete;
  Mcpd& operator=(const Mcpd&) = delete;

  /// Routes every frame of `doc` (a complete mcpwire document) to its
  /// session's shard.  Thread-safe; frames of one session submitted by one
  /// thread are processed in submission order.  Malformed documents throw
  /// InputError before anything is enqueued.  Must not be called
  /// concurrently with (or after) stop().
  void submit_document(std::shared_ptr<const std::vector<std::byte>> doc,
                       std::shared_ptr<ResponseMailbox> reply_to);

  /// Drains all shards and joins their workers.  Idempotent; called by the
  /// destructor.  After stop(), stats() snapshots are race-free.
  void stop();

  [[nodiscard]] std::size_t num_shards() const noexcept;

  /// Per-shard counters.  Only call after stop().
  [[nodiscard]] const ShardStats& shard_stats(std::size_t shard) const;

  /// Sum of shard_stats over shards (epoch histograms merged).  Only call
  /// after stop().
  [[nodiscard]] ShardStats total_stats() const;

  [[nodiscard]] std::size_t shard_of(std::uint64_t session) const noexcept;

 private:
  McpdConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopped_{false};
};

/// Blocking convenience client: wraps frame building, submission and reply
/// parsing around one ResponseMailbox.  One McpdClient per client thread.
class McpdClient {
 public:
  explicit McpdClient(Mcpd& daemon)
      : daemon_(&daemon), mailbox_(std::make_shared<ResponseMailbox>()) {}

  void open(std::uint64_t session, const wire::SessionParams& params);
  void send_pairs(std::uint64_t session,
                  std::span<const wire::WirePair> pairs);
  void send_core_pages(std::uint64_t session, std::uint32_t core,
                       std::span<const PageId> pages);
  /// Same requests as send_core_pages in the compact kRequestRun framing.
  void send_core_run(std::uint64_t session, std::uint32_t core,
                     std::span<const PageId> pages);
  void close(std::uint64_t session);

  /// Fire-and-forget query posts (replies arrive in the mailbox).
  void post_query_faults(std::uint64_t session, std::uint64_t query_id);
  void post_query_fault_curve(std::uint64_t session, std::uint64_t query_id,
                              std::uint32_t max_k);
  void post_query_partition(std::uint64_t session, std::uint64_t query_id);

  /// Blocking round trips (post + wait; replies to *other* outstanding
  /// queries arriving first are stashed and matched by query id).  A query
  /// the daemon rejects or fails to answer produces a kError reply, which
  /// these helpers surface by throwing InputError.
  [[nodiscard]] wire::FaultCountsReply query_faults(std::uint64_t session,
                                                    std::uint64_t query_id);
  [[nodiscard]] wire::FaultCurveReply query_fault_curve(
      std::uint64_t session, std::uint64_t query_id, std::uint32_t max_k);
  [[nodiscard]] wire::PartitionAdviceReply query_partition(
      std::uint64_t session, std::uint64_t query_id);

  /// Waits for the next reply of any kind and returns its parsed frame
  /// (pipelined consumers match query ids themselves).  The returned view's
  /// payload aliases `storage`.
  [[nodiscard]] wire::FrameView wait_reply(std::vector<std::byte>& storage);

 private:
  void submit(wire::WireWriter&& writer);
  /// Waits for the reply with `query_id` of frame type `want`.
  [[nodiscard]] std::vector<std::byte> wait_for(wire::FrameType want,
                                                std::uint64_t query_id);

  Mcpd* daemon_;
  std::shared_ptr<ResponseMailbox> mailbox_;
  std::vector<std::vector<std::byte>> stash_;  ///< Out-of-order replies.
};

}  // namespace mcp::service
