// mcpd-loadgen: replays synthetic multi-tenant workloads against an
// in-process mcpd and measures ingest throughput and epoch latency.
//
// Each tenant is one session with its own seeded trace (workload lib).
// Tenant documents (open + interleaved request chunks + close + one
// fault-count query) are pre-encoded outside the timed region, so the
// measurement covers exactly the daemon path: submit -> shard ingress ->
// session stepping (cohort lanes or scalar SimSession, see TenantMix and
// LoadgenConfig::enable_batching) -> response publish.  `producers` client
// threads submit concurrently, exercising the multi-producer side of the
// ingress queue, then block until every tenant's reply arrives.
//
// Two throughput figures are reported (docs/MCPD.md "Measuring on one
// CPU"):
//
//   requests_per_sec  pairs / wall seconds of the timed region.  On a
//                     single-CPU host this CANNOT rise with the shard
//                     count — every shard shares the one core.
//   capacity_rps      sum over shards of pairs_s / busy_s, where busy_s is
//                     the shard worker's CLOCK_THREAD_CPUTIME_ID seconds.
//                     This is per-shard processing rate summed: it rises
//                     with shard count exactly when shards do not
//                     serialize against each other, and is the scaling
//                     figure the acceptance sweep gates on.
//
// total_faults is a determinism checksum: it must be identical across
// shard counts, producer counts and chunk sizes for a fixed workload seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/stats.hpp"
#include "core/types.hpp"
#include "service/mcpd.hpp"

namespace mcp::service {

/// Tenant composition of a loadgen pass.
enum class TenantMix {
  /// Tenants cycle through all four wire strategies — several cohorts per
  /// shard, the representative multi-tenant replay.
  kMixed,
  /// Every tenant shares LoadgenConfig::strategy and parameters — one
  /// cohort per shard, the shape the batched path is built for.
  kHomogeneous,
};

struct LoadgenConfig {
  std::size_t num_shards = 1;
  std::size_t tenants = 32;
  std::size_t producers = 2;        ///< Concurrent submitting client threads.
  std::size_t cores_per_tenant = 4;
  std::size_t requests_per_core = 2048;
  std::size_t pages_per_core = 128;
  std::size_t cache_size = 64;
  Time fault_penalty = 4;
  std::size_t chunk_pairs = 256;    ///< Pairs per kRequestChunk frame.
  wire::StrategyKind strategy = wire::StrategyKind::kSharedLru;
  TenantMix mix = TenantMix::kMixed;
  bool enable_batching = true;      ///< McpdConfig::enable_batching.
  std::uint64_t seed = 0x10adULL;
};

struct LoadgenResult {
  std::size_t shards = 0;
  std::size_t tenants = 0;
  std::uint64_t pairs = 0;          ///< Request pairs pushed through mcpd.
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;    ///< pairs / wall_seconds.
  double capacity_rps = 0.0;        ///< Busy-time-normalized (header comment).
  std::uint64_t total_faults = 0;   ///< Determinism checksum.
  std::uint64_t epochs = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t batched_sessions = 0;  ///< Sessions served by cohort lanes.
  std::uint64_t scalar_sessions = 0;   ///< Sessions served by SimSession.
  std::uint64_t lane_steps = 0;        ///< Cohort lockstep iterations.
  LatencyHistogram epoch_latency;   ///< Wall ns per shard epoch, merged.
};

/// Runs one full loadgen pass (build tenants, submit, await replies, stop
/// the daemon) and returns the measurements.
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenConfig& config);

}  // namespace mcp::service
