#include "service/mcpd.hpp"

#include <time.h>

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <limits>
#include <utility>

#include "core/batch_engine.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "policies/mattson.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"

namespace mcp::service {

namespace {

/// Largest max_k a fault-curve query may ask for (bounds reply memory).
constexpr std::uint32_t kMaxCurveK = 1u << 16;

[[nodiscard]] std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

[[nodiscard]] std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] std::unique_ptr<CacheStrategy> make_strategy(
    const wire::SessionParams& params) {
  const bool lru = params.strategy == wire::StrategyKind::kSharedLru ||
                   params.strategy == wire::StrategyKind::kStaticEvenLru;
  PolicyFactory factory = make_policy_factory(lru ? "lru" : "fifo");
  switch (params.strategy) {
    case wire::StrategyKind::kSharedLru:
    case wire::StrategyKind::kSharedFifo:
      return std::make_unique<SharedStrategy>(std::move(factory));
    case wire::StrategyKind::kStaticEvenLru:
    case wire::StrategyKind::kStaticEvenFifo:
      if (params.cache_size < params.num_cores) {
        throw InputError(
            "mcpd: static partition session needs cache_size >= num_cores");
      }
      return std::make_unique<StaticPartitionStrategy>(
          even_partition(params.cache_size, params.num_cores),
          std::move(factory));
  }
  throw InputError("mcpd: unknown strategy kind");
}

/// The batched counterpart of make_strategy.  nullopt means the params are
/// valid but only the scalar path may serve them: a shared cache smaller
/// than the core count can legitimately abort with "no evictable page"
/// (every slot reserved), and that must fail one session, never a cohort.
/// Invalid params (static partition with K < p, unknown kind) throw the
/// same InputError the scalar constructor would.
[[nodiscard]] std::optional<BatchStrategySpec> batchable_spec(
    const wire::SessionParams& params) {
  const bool lru = params.strategy == wire::StrategyKind::kSharedLru ||
                   params.strategy == wire::StrategyKind::kStaticEvenLru;
  const BatchPolicy policy = lru ? BatchPolicy::kLru : BatchPolicy::kFifo;
  switch (params.strategy) {
    case wire::StrategyKind::kSharedLru:
    case wire::StrategyKind::kSharedFifo:
      if (params.cache_size < params.num_cores) return std::nullopt;
      return BatchStrategySpec::shared(policy);
    case wire::StrategyKind::kStaticEvenLru:
    case wire::StrategyKind::kStaticEvenFifo:
      if (params.cache_size < params.num_cores) {
        throw InputError(
            "mcpd: static partition session needs cache_size >= num_cores");
      }
      return BatchStrategySpec::static_partition(
          even_partition(params.cache_size, params.num_cores), policy);
  }
  throw InputError("mcpd: unknown strategy kind");
}

}  // namespace

// --- Cohorts ----------------------------------------------------------------

/// Grouping key for batchable sessions: every wire parameter that shapes
/// the simulation.  (Shared-fetch mode is not on the wire — every daemon
/// session runs the default kCountsAsFault — so it needs no key field.)
struct CohortKey {
  std::uint32_t num_cores = 0;
  std::uint32_t cache_size = 0;
  std::uint32_t fault_penalty = 0;
  wire::StrategyKind strategy = wire::StrategyKind::kSharedLru;

  bool operator==(const CohortKey&) const = default;
};

struct CohortKeyHash {
  [[nodiscard]] std::size_t operator()(const CohortKey& key) const noexcept {
    std::uint64_t state = (std::uint64_t{key.num_cores} << 40) ^
                          (std::uint64_t{key.cache_size} << 12) ^
                          (std::uint64_t{key.fault_penalty} << 4) ^
                          static_cast<std::uint64_t>(key.strategy);
    return static_cast<std::size_t>(splitmix64(state));
  }
};

class Session;

/// One cohort: every session on a shard sharing a CohortKey occupies a lane
/// of this group's cohort-mode BatchEngine.  `touched` collects the
/// sessions refreshed in the current epoch, so the post-drain sweep visits
/// only lanes that could have ended (a lane only ends in an epoch it was
/// refreshed in — ending requires waking first).
struct CohortGroup {
  BatchEngine engine;
  std::vector<Session*> touched;
  std::uint64_t steps_seen = 0;  ///< engine.lane_steps() after last drain.
  bool dirty = false;            ///< Queued in the epoch's drain list.
};

// --- ResponseMailbox --------------------------------------------------------

ResponseMailbox::~ResponseMailbox() {
  // Drain so the queue's leak assert holds even when a client abandons
  // replies (e.g. a pipelined loadgen that only samples).
  while (ResponseMsg* msg = queue_.pop()) delete msg;
}

void ResponseMailbox::deliver(std::vector<std::byte> doc) {
  auto msg = std::make_unique<ResponseMsg>();
  msg->doc = std::move(doc);
  queue_.push(msg.release());
  delivered_.fetch_add(1, std::memory_order_release);
  delivered_.notify_one();
}

std::optional<std::vector<std::byte>> ResponseMailbox::try_pop() {
  ResponseMsg* raw = queue_.pop();
  if (raw == nullptr) return std::nullopt;
  std::unique_ptr<ResponseMsg> msg(raw);
  ++taken_;
  return std::move(msg->doc);
}

std::vector<std::byte> ResponseMailbox::wait() {
  for (;;) {
    if (std::optional<std::vector<std::byte>> doc = try_pop()) {
      return *std::move(doc);
    }
    const std::uint64_t seen = delivered_.load(std::memory_order_acquire);
    // seen > taken_: a delivery is queued but its list link is mid-flight
    // (the MPSC transient) — spin, the producer is two instructions away.
    if (seen > taken_) continue;
    delivered_.wait(seen, std::memory_order_acquire);
  }
}

// --- Session ----------------------------------------------------------------

/// One tenant session, owned by exactly one shard, on one of two stepping
/// paths:
///
///   scalar   the session *is* the RequestSource feeding its SimSession:
///            pull() walks the accumulated trace behind a per-core cursor
///            and reports kStalled past the buffered end until the client
///            closes — SimSession parks mid-step and resumes on the next
///            epoch.
///   batched  the session occupies a lane of its cohort group's
///            BatchEngine, whose per-core cursors walk the same trace with
///            the same stall/resume semantics, but p lanes step as one SoA
///            kernel.
///
/// Both paths make per-session results independent of chunk arrival timing
/// and bit-identical to a direct Simulator::run of the full trace.
class Session final : public RequestSource {
 public:
  /// `cohort == nullptr` selects the scalar path.  A batched session holds
  /// no strategy object and no SimSession — the cohort engine is the
  /// simulator.
  Session(std::uint64_t id, const wire::SessionParams& params,
          CohortGroup* cohort)
      : id_(id), params_(params), trace_(params.num_cores) {
    if (cohort == nullptr) {
      cursor_.assign(params.num_cores, 0);
      strategy_ = make_strategy(params);
      SimConfig config;
      config.cache_size = params.cache_size;
      config.fault_penalty = params.fault_penalty;
      config.record_fault_timeline = false;
      sim_.emplace(config, params.num_cores, *strategy_);
      return;
    }
    // Attach last: nothing before this line touches the engine, so a throw
    // earlier in construction cannot leave an orphaned lane behind.
    cohort_ = cohort;
    lane_ = cohort->engine.attach_lane();
  }

  [[nodiscard]] std::size_t num_cores() const override {
    return params_.num_cores;
  }

  PullStatus pull(CoreId core, PageId& page) override {
    const RequestSequence& seq = trace_.sequence(core);
    if (cursor_[core] < seq.size()) {
      page = seq[cursor_[core]++];
      return PullStatus::kReady;
    }
    return closed_ ? PullStatus::kEnded : PullStatus::kStalled;
  }

  /// Appends a chunk's pairs to the trace (validating core ids).  Returns
  /// the number of pairs ingested.
  std::size_t append_chunk(const wire::ChunkView& chunk) {
    if (closed_) throw InputError("mcpd: request chunk after session close");
    // Encoders emit single-core runs (WireWriter's per-core chunk shape),
    // so pairs are ingested in core-run tiles: one bounds check, one
    // sequence lookup and one bulk append per tile instead of a push_back
    // per pair.  This loop is on every request's path in both session
    // modes, scalar and batched alike.
    const std::size_t n = chunk.size();
    std::array<PageId, 256> tile;
    std::size_t i = 0;
    while (i < n) {
      // Optimistic scan: accumulate the core mismatch and the page maximum
      // branchlessly over the whole tile — for the single-core tiles every
      // encoder produces, the loop has no data-dependent exits and the
      // compiler can unroll or vectorize it.  A genuinely mixed tile (legal
      // wire, just not what WireWriter emits) falls back to a re-scan for
      // the leading run's length.
      const std::size_t lim = std::min(tile.size(), n - i);
      const std::uint32_t run_core = chunk.pair(i).core;
      std::uint32_t core_diff = 0;
      PageId max_page = 0;
      for (std::size_t k = 0; k < lim; ++k) {
        const wire::WirePair pair = chunk.pair(i + k);
        core_diff |= pair.core ^ run_core;
        max_page = std::max(max_page, pair.page);
        tile[k] = pair.page;
      }
      std::size_t len = lim;
      if (core_diff != 0) {
        len = 1;
        while (len < lim && chunk.pair(i + len).core == run_core) ++len;
        max_page = 0;
        for (std::size_t k = 0; k < len; ++k) {
          max_page = std::max(max_page, tile[k]);
        }
      }
      if (run_core >= params_.num_cores) {
        throw InputError("mcpd: request pair core " +
                         std::to_string(run_core) + " out of range");
      }
      // Tracked here so a lane refresh need not rescan the trace
      // (RequestSet::page_bound() is O(total pairs)).
      if (max_page >= page_bound_) page_bound_ = max_page + 1;
      trace_.sequence(run_core).append({tile.data(), len});
      i += len;
    }
    return n;
  }

  /// kRequestRun ingest: the run's page words are already a little-endian
  /// PageId array, so the hot path is a max-scan plus one bulk append —
  /// half the wire bytes of a chunk and no per-pair core decode.  This is
  /// what makes the daemon's ingest cost a small constant next to the
  /// stepping paths (docs/MCPD.md "capacity").
  std::size_t append_run(const wire::RunView& run) {
    if (closed_) throw InputError("mcpd: request run after session close");
    if (run.core() >= params_.num_cores) {
      throw InputError("mcpd: request run core " +
                       std::to_string(run.core()) + " out of range");
    }
    const std::size_t n = run.size();
    if (n == 0) return 0;
    RequestSequence& seq = trace_.sequence(run.core());
    const std::size_t old_size = seq.size();
    if constexpr (std::endian::native == std::endian::little) {
      // The run payload already is a PageId array (4-aligned LE words):
      // append straight from the client's buffer, the one unavoidable
      // cold pass over the wire bytes.
      seq.append({reinterpret_cast<const PageId*>(run.page_bytes()), n});
    } else {
      std::array<PageId, 1024> tile;
      for (std::size_t i = 0; i < n;) {
        const std::size_t len = std::min(tile.size(), n - i);
        for (std::size_t k = 0; k < len; ++k) tile[k] = run.page(i + k);
        seq.append({tile.data(), len});
        i += len;
      }
    }
    // Fold the page bound over the just-written (cache-hot) tail — kept
    // current here so a lane refresh need not rescan the trace
    // (RequestSet::page_bound() is O(total pairs)).
    PageId bound = page_bound_;
    for (const PageId page : seq.pages().subspan(old_size)) {
      bound = std::max(bound, page + 1);
    }
    page_bound_ = bound;
    return n;
  }

  void close() { closed_ = true; }

  /// Parks (or, once finished, immediately answers) a query.  Replies go to
  /// the submitting frame's mailbox; an infeasible query or a park-limit
  /// overflow gets a kError reply instead of stranding a blocking client.
  void enqueue_query(wire::FrameType type, const wire::QueryView& query,
                     std::weak_ptr<ResponseMailbox> reply_to,
                     std::size_t park_limit) {
    if (const char* why = query_rejected(type, query)) {
      answer_error(query.query_id, why, reply_to);
      return;
    }
    if (finished_) {
      answer(type, query, reply_to);
      return;
    }
    if (parked_.size() >= park_limit) {
      answer_error(query.query_id,
                   "mcpd: too many queries parked on an open session",
                   reply_to);
      return;
    }
    parked_.push_back({type, query, std::move(reply_to)});
  }

  /// Scalar path: steps the simulation as far as the buffered trace allows.
  /// Returns true when the session just finished (close seen and fully
  /// simulated).
  bool advance_buffered() {
    if (finished_ || !dirty_) return false;
    dirty_ = false;
    if (!sim_->advance(*this)) return false;
    stats_ = sim_->take_stats();
    finish();
    return true;
  }

  /// Batched path: re-points the lane at the grown trace and wakes it when
  /// it can progress.  Returns false when there is nothing to step.
  bool refresh_lane() {
    if (finished_ || !dirty_) return false;
    dirty_ = false;
    cohort_->engine.refresh_lane(lane_, trace_, page_bound_, closed_);
    return true;
  }

  [[nodiscard]] bool batched() const noexcept { return cohort_ != nullptr; }
  [[nodiscard]] CohortGroup* cohort() const noexcept { return cohort_; }

  /// True once the lane served its last request (post-drain check).
  [[nodiscard]] bool lane_ended() const {
    return !finished_ &&
           cohort_->engine.lane_status(lane_) == BatchLaneStatus::kEnded;
  }

  /// Collects the ended lane's stats, recycles the lane and answers parked
  /// queries — the batched counterpart of advance_buffered()'s finish.
  void finish_batched() {
    stats_ = cohort_->engine.detach_lane(lane_);
    finish();
  }

  void mark_dirty() { dirty_ = true; }
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }

 private:
  struct ParkedQuery {
    wire::FrameType type;
    wire::QueryView query;
    std::weak_ptr<ResponseMailbox> reply_to;
  };

  /// Marks the session finished (stats_ must already be final) and answers
  /// every parked query.
  void finish() {
    finished_ = true;
    const std::vector<ParkedQuery> parked = std::exchange(parked_, {});
    for (const ParkedQuery& query : parked) {
      try {
        answer(query.type, query.query, query.reply_to);
      } catch (const std::exception&) {
        // answer() turns its own failures into kError replies; landing here
        // means even that failed (e.g. allocation).  Drop this reply and
        // keep answering the rest — one bad query must not strand the
        // others.
      }
    }
  }

  /// Why a query can never be answered on this session, or nullptr if it
  /// can.  Checked at enqueue time so the error reply is immediate — a
  /// parked query must not wait for the session to finish only to fail.
  [[nodiscard]] const char* query_rejected(
      wire::FrameType type, const wire::QueryView& query) const {
    if (type == wire::FrameType::kQueryFaultCurve &&
        query.max_k > kMaxCurveK) {
      return "mcpd: fault curve max_k above the service limit";
    }
    if (type == wire::FrameType::kQueryPartition &&
        params_.cache_size < params_.num_cores) {
      return "mcpd: partition advice needs cache_size >= num_cores";
    }
    return nullptr;
  }

  void answer_error(std::uint64_t query_id, const char* message,
                    const std::weak_ptr<ResponseMailbox>& reply_to) {
    const std::shared_ptr<ResponseMailbox> mailbox = reply_to.lock();
    if (!mailbox) return;  // client gone; the reply has no reader
    wire::WireWriter writer;
    wire::ErrorReply reply;
    reply.query_id = query_id;
    reply.message = message;
    writer.error_reply(id_, reply);
    mailbox->deliver(std::move(writer).take());
  }

  void answer(wire::FrameType type, const wire::QueryView& query,
              const std::weak_ptr<ResponseMailbox>& reply_to) {
    const std::shared_ptr<ResponseMailbox> mailbox = reply_to.lock();
    if (!mailbox) return;  // client gone; the reply has no reader
    wire::WireWriter writer;
    try {
      build_answer(writer, type, query);
    } catch (const std::exception& e) {
      wire::WireWriter error;
      wire::ErrorReply reply;
      reply.query_id = query.query_id;
      reply.message = e.what();
      error.error_reply(id_, reply);
      mailbox->deliver(std::move(error).take());
      return;
    }
    mailbox->deliver(std::move(writer).take());
  }

  void build_answer(wire::WireWriter& writer, wire::FrameType type,
                    const wire::QueryView& query) {
    switch (type) {
      case wire::FrameType::kQueryFaults: {
        wire::FaultCountsReply reply;
        reply.query_id = query.query_id;
        reply.finished = true;
        reply.requests_served = stats_.total_requests();
        reply.end_time = stats_.end_time;
        reply.per_core_faults.resize(params_.num_cores);
        reply.completion_times.resize(params_.num_cores);
        for (CoreId j = 0; j < params_.num_cores; ++j) {
          reply.per_core_faults[j] = stats_.core(j).faults;
          reply.completion_times[j] = stats_.core(j).completion_time;
        }
        writer.fault_counts(id_, reply);
        break;
      }
      case wire::FrameType::kQueryFaultCurve: {
        wire::FaultCurveReply reply;
        reply.query_id = query.query_id;
        reply.max_k = query.max_k;
        reply.curves = lru_fault_curve_batch(trace_, query.max_k);
        writer.fault_curve(id_, reply);
        break;
      }
      case wire::FrameType::kQueryPartition: {
        // query_rejected() screens infeasible partitions at enqueue time;
        // this is unreachable for accepted queries.
        const FaultCurves curves =
            lru_fault_curve_batch(trace_, params_.cache_size);
        const PartitionSearchResult best =
            optimal_partition_from_curves(curves, params_.cache_size);
        wire::PartitionAdviceReply reply;
        reply.query_id = query.query_id;
        reply.predicted_faults = best.faults;
        reply.cells_per_core.reserve(best.partition.size());
        for (std::size_t cells : best.partition) {
          reply.cells_per_core.push_back(static_cast<std::uint32_t>(cells));
        }
        writer.partition_advice(id_, reply);
        break;
      }
      default:
        throw InputError("mcpd: not a query frame");
    }
  }

  std::uint64_t id_;
  wire::SessionParams params_;
  RequestSet trace_;                 ///< Grows as chunks arrive.
  PageId page_bound_ = 0;            ///< 1 + max page id seen in trace_.
  // Scalar path only.
  std::vector<std::size_t> cursor_;  ///< Per-core feed position in trace_.
  std::unique_ptr<CacheStrategy> strategy_;
  std::optional<SimSession> sim_;
  // Batched path only.
  CohortGroup* cohort_ = nullptr;    ///< Owned by the shard; outlives us.
  std::uint32_t lane_ = 0;           ///< Valid until finish_batched().
  RunStats stats_;  ///< Valid once finished_.
  std::vector<ParkedQuery> parked_;
  bool closed_ = false;
  bool dirty_ = false;
  bool finished_ = false;
};

// --- Shard ------------------------------------------------------------------

/// One shard: a dedicated worker thread, its ingress queue, and the
/// sessions hashed to it.  All session state is thread-confined to the
/// worker; the queue and the pending_ counter are the only shared parts.
class Shard {
 public:
  explicit Shard(const McpdConfig& config) : config_(config) {}

  ~Shard() { stop_and_join(); }

  void start() {
    worker_ = std::thread([this] { run(); });
  }

  /// Takes ownership of `msg`.  Any thread.
  void enqueue(IngressMsg* msg) {
    ingress_.push(msg);
    pending_.fetch_add(1, std::memory_order_release);
    pending_.notify_one();
  }

  void stop_and_join() {
    if (worker_.joinable()) {
      stop_.store(true, std::memory_order_release);
      pending_.fetch_add(1, std::memory_order_release);  // phantom wake token
      pending_.notify_one();
      worker_.join();
    }
    // A submit that raced stop() may have enqueued frames after the
    // worker's final drain; free them so nothing leaks and the queue's
    // non-empty destructor assert holds.
    while (IngressMsg* raw = ingress_.pop()) delete raw;
  }

  /// Race-free only after stop_and_join().
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }

 private:
  void run() {
    for (;;) {
      const std::uint64_t seen = pending_.load(std::memory_order_acquire);
      if (process_epoch()) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      if (pending_.load(std::memory_order_acquire) != seen) continue;
      pending_.wait(seen, std::memory_order_acquire);
    }
  }

  /// One epoch: drain every queued frame, step every touched session,
  /// publish responses.  Returns false when the queue was empty.
  bool process_epoch() {
    std::uint64_t wall0 = 0;
    std::uint64_t cpu0 = 0;
    std::uint64_t frames = 0;
    dirty_.clear();
    while (IngressMsg* raw = ingress_.pop()) {
      std::unique_ptr<IngressMsg> msg(raw);
      if (frames == 0) {
        wall0 = wall_ns();
        cpu0 = thread_cpu_ns();
      }
      ++frames;
      try {
        apply_frame(*msg);
      } catch (const std::exception&) {
        // A malformed or out-of-protocol frame must not take the daemon
        // down; it is counted and dropped (docs/MCPD.md "error handling").
        ++stats_.bad_frames;
      }
    }
    if (frames == 0) return false;
    // Step scalar sessions directly; batched sessions refresh their lanes
    // and queue their cohort groups, each of which then drains as one SoA
    // kernel.  Per-session results do not depend on this ordering — lanes
    // never read each other's state.
    dirty_groups_.clear();
    for (Session* session : dirty_) {
      try {
        if (session->batched()) {
          if (!session->refresh_lane()) continue;
          CohortGroup* group = session->cohort();
          group->touched.push_back(session);
          if (!group->dirty) {
            group->dirty = true;
            dirty_groups_.push_back(group);
          }
        } else if (session->advance_buffered()) {
          ++stats_.sessions_finished;
        }
      } catch (const std::exception&) {
        ++stats_.bad_frames;
      }
    }
    for (CohortGroup* group : dirty_groups_) {
      try {
        group->engine.drain();
      } catch (const std::exception&) {
        // Accepted cohort shapes cannot abort (batchable_spec screens the
        // K < p shared case); this is a defensive count, not a live path.
        ++stats_.bad_frames;
      }
      stats_.lane_steps += group->engine.lane_steps() - group->steps_seen;
      group->steps_seen = group->engine.lane_steps();
      for (Session* session : group->touched) {
        try {
          if (session->lane_ended()) {
            session->finish_batched();
            ++stats_.sessions_finished;
          }
        } catch (const std::exception&) {
          ++stats_.bad_frames;
        }
      }
      group->touched.clear();
      group->dirty = false;
    }
    stats_.frames += frames;
    ++stats_.epochs;
    stats_.busy_ns += thread_cpu_ns() - cpu0;
    stats_.epoch_latency.record(wall_ns() - wall0);
    return true;
  }

  void apply_frame(const IngressMsg& msg) {
    const wire::FrameView frame = wire::parse_frame(
        std::span<const std::byte>(*msg.doc).subspan(msg.offset, msg.length),
        msg.offset);
    switch (frame.type) {
      case wire::FrameType::kSessionOpen: {
        const wire::SessionParams params = wire::decode_session_open(frame);
        if (sessions_.contains(frame.session)) {
          throw InputError("mcpd: duplicate session open");
        }
        // batchable_spec and the scalar make_strategy reject invalid params
        // with the same errors, so an open fails identically in both modes.
        CohortGroup* cohort = nullptr;
        if (config_.enable_batching) {
          if (const std::optional<BatchStrategySpec> spec =
                  batchable_spec(params)) {
            cohort = &cohort_group(params, *spec);
          }
        }
        // Construct before inserting: a throwing Session constructor (e.g.
        // an infeasible strategy/cache combination) must not leave a null
        // map entry behind for later frames to dereference.
        auto session =
            std::make_unique<Session>(frame.session, params, cohort);
        sessions_.emplace(frame.session, std::move(session));
        ++stats_.sessions_opened;
        ++(cohort != nullptr ? stats_.batched_sessions
                             : stats_.scalar_sessions);
        break;
      }
      case wire::FrameType::kRequestChunk: {
        Session& session = find_session(frame.session);
        stats_.pairs += session.append_chunk(wire::ChunkView(frame));
        mark_dirty(session);
        break;
      }
      case wire::FrameType::kRequestRun: {
        Session& session = find_session(frame.session);
        stats_.pairs += session.append_run(wire::RunView(frame));
        mark_dirty(session);
        break;
      }
      case wire::FrameType::kSessionClose: {
        Session& session = find_session(frame.session);
        session.close();
        mark_dirty(session);
        break;
      }
      case wire::FrameType::kQueryFaults:
      case wire::FrameType::kQueryFaultCurve:
      case wire::FrameType::kQueryPartition: {
        Session& session = find_session(frame.session);
        session.enqueue_query(frame.type, wire::decode_query(frame),
                              msg.reply_to, config_.max_parked_queries);
        break;
      }
      default:
        throw InputError("mcpd: response frame on the ingress path");
    }
  }

  Session& find_session(std::uint64_t id) {
    // Frames arrive in per-tenant bursts (a tenant document is one run of
    // open/chunks/close/query frames), so a one-entry MRU cache skips the
    // hash lookup for nearly every chunk.  Session objects are uniquely
    // owned by the map and never erased while the shard runs, so the
    // cached pointer cannot dangle; id 0 is reserved, so the empty cache
    // never matches.
    if (id == mru_session_id_) return *mru_session_;
    const auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second == nullptr) {
      throw InputError("mcpd: frame for unknown session " +
                       std::to_string(id));
    }
    mru_session_id_ = id;
    mru_session_ = it->second.get();
    return *mru_session_;
  }

  /// Finds or creates the cohort group for batchable params.  Groups are
  /// never destroyed while the shard lives: a one-session cohort simply
  /// keeps its engine (and recycled lanes) warm for the next compatible
  /// open.
  CohortGroup& cohort_group(const wire::SessionParams& params,
                            const BatchStrategySpec& spec) {
    const CohortKey key{params.num_cores, params.cache_size,
                        params.fault_penalty, params.strategy};
    auto it = cohorts_.find(key);
    if (it == cohorts_.end()) {
      auto group = std::make_unique<CohortGroup>();
      CohortShape shape;
      shape.cache_size = params.cache_size;
      shape.num_cores = params.num_cores;
      shape.fault_penalty = params.fault_penalty;
      shape.strategy = spec;
      // max_steps 0 (sessions may be arbitrarily long), no fault timeline —
      // the same SimConfig the scalar path uses.
      group->engine.init_cohort(shape);
      it = cohorts_.emplace(key, std::move(group)).first;
    }
    return *it->second;
  }

  void mark_dirty(Session& session) {
    if (!session.dirty()) {
      session.mark_dirty();
      dirty_.push_back(&session);
    }
  }

  McpdConfig config_;
  MpscQueue<IngressMsg> ingress_;
  alignas(64) std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t mru_session_id_ = 0;     ///< 0 = empty (id 0 is reserved).
  Session* mru_session_ = nullptr;
  std::unordered_map<CohortKey, std::unique_ptr<CohortGroup>, CohortKeyHash>
      cohorts_;
  std::vector<Session*> dirty_;          ///< Sessions touched this epoch.
  std::vector<CohortGroup*> dirty_groups_;  ///< Groups touched this epoch.
  ShardStats stats_;
  std::thread worker_;
};

// --- Mcpd -------------------------------------------------------------------

Mcpd::Mcpd(McpdConfig config) : config_(config) {
  MCP_REQUIRE(config_.num_shards >= 1, "mcpd needs at least one shard");
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_));
  }
  for (auto& shard : shards_) shard->start();
}

Mcpd::~Mcpd() { stop(); }

std::size_t Mcpd::shard_of(std::uint64_t session) const noexcept {
  std::uint64_t state = session;
  return splitmix64(state) % shards_.size();
}

void Mcpd::submit_document(std::shared_ptr<const std::vector<std::byte>> doc,
                           std::shared_ptr<ResponseMailbox> reply_to) {
  MCP_REQUIRE(!stopped_.load(std::memory_order_acquire),
              "mcpd: submit after stop");
  MCP_REQUIRE(doc != nullptr, "mcpd: null document");
  // Pass 1 validates the whole document's framing, so a malformed tail
  // never leaves a prefix half-enqueued.
  struct Slot {
    std::size_t offset;
    std::size_t length;
    std::uint64_t session;
  };
  std::vector<Slot> slots;
  {
    wire::WireReader reader(*doc);
    wire::FrameView frame;
    std::size_t start = reader.offset();
    while (reader.next(frame)) {
      slots.push_back({start, reader.offset() - start, frame.session});
      start = reader.offset();
    }
  }
  for (const Slot& slot : slots) {
    auto msg = std::make_unique<IngressMsg>();
    msg->doc = doc;
    msg->offset = slot.offset;
    msg->length = slot.length;
    msg->reply_to = reply_to;
    shards_[shard_of(slot.session)]->enqueue(msg.release());
  }
}

void Mcpd::stop() {
  // Mark stopped *before* joining so a submit racing shutdown trips the
  // precondition check instead of enqueueing into a joined shard.
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) shard->stop_and_join();
}

std::size_t Mcpd::num_shards() const noexcept { return shards_.size(); }

const ShardStats& Mcpd::shard_stats(std::size_t shard) const {
  MCP_REQUIRE(stopped_.load(std::memory_order_acquire),
              "mcpd: shard_stats before stop");
  return shards_.at(shard)->stats();
}

ShardStats Mcpd::total_stats() const {
  MCP_REQUIRE(stopped_.load(std::memory_order_acquire),
              "mcpd: total_stats before stop");
  ShardStats total;
  for (const auto& shard : shards_) {
    const ShardStats& s = shard->stats();
    total.frames += s.frames;
    total.pairs += s.pairs;
    total.epochs += s.epochs;
    total.sessions_opened += s.sessions_opened;
    total.sessions_finished += s.sessions_finished;
    total.batched_sessions += s.batched_sessions;
    total.scalar_sessions += s.scalar_sessions;
    total.lane_steps += s.lane_steps;
    total.bad_frames += s.bad_frames;
    total.busy_ns += s.busy_ns;
    total.epoch_latency.merge(s.epoch_latency);
  }
  return total;
}

// --- McpdClient -------------------------------------------------------------

namespace {

struct ReplyKey {
  wire::FrameType type;
  std::uint64_t query_id;
};

/// All reply payloads lead with their u64 query id.
[[nodiscard]] ReplyKey peek_reply(const std::vector<std::byte>& doc) {
  wire::WireReader reader(doc);
  wire::FrameView frame;
  MCP_REQUIRE(reader.next(frame), "mcpd client: empty reply document");
  MCP_REQUIRE(frame.payload.size() >= 8, "mcpd client: reply payload too short");
  return {frame.type, wire::load_u64(frame.payload.data())};
}

[[nodiscard]] wire::FrameView reply_frame(const std::vector<std::byte>& doc) {
  wire::WireReader reader(doc);
  wire::FrameView frame;
  MCP_REQUIRE(reader.next(frame), "mcpd client: empty reply document");
  return frame;
}

[[noreturn]] void throw_error_reply(const std::vector<std::byte>& doc) {
  const wire::ErrorReply error = wire::decode_error(reply_frame(doc));
  throw InputError("mcpd: query " + std::to_string(error.query_id) +
                   " failed: " + error.message);
}

}  // namespace

void McpdClient::submit(wire::WireWriter&& writer) {
  daemon_->submit_document(std::make_shared<const std::vector<std::byte>>(
                               std::move(writer).take()),
                           mailbox_);
}

void McpdClient::open(std::uint64_t session,
                      const wire::SessionParams& params) {
  wire::WireWriter writer;
  writer.session_open(session, params);
  submit(std::move(writer));
}

void McpdClient::send_pairs(std::uint64_t session,
                            std::span<const wire::WirePair> pairs) {
  wire::WireWriter writer;
  writer.request_chunk(session, pairs);
  submit(std::move(writer));
}

void McpdClient::send_core_pages(std::uint64_t session, std::uint32_t core,
                                 std::span<const PageId> pages) {
  wire::WireWriter writer;
  writer.request_chunk(session, core, pages);
  submit(std::move(writer));
}

void McpdClient::send_core_run(std::uint64_t session, std::uint32_t core,
                               std::span<const PageId> pages) {
  wire::WireWriter writer;
  writer.request_run(session, core, pages);
  submit(std::move(writer));
}

void McpdClient::close(std::uint64_t session) {
  wire::WireWriter writer;
  writer.session_close(session);
  submit(std::move(writer));
}

void McpdClient::post_query_faults(std::uint64_t session,
                                   std::uint64_t query_id) {
  wire::WireWriter writer;
  writer.query_faults(session, query_id);
  submit(std::move(writer));
}

void McpdClient::post_query_fault_curve(std::uint64_t session,
                                        std::uint64_t query_id,
                                        std::uint32_t max_k) {
  wire::WireWriter writer;
  writer.query_fault_curve(session, query_id, max_k);
  submit(std::move(writer));
}

void McpdClient::post_query_partition(std::uint64_t session,
                                      std::uint64_t query_id) {
  wire::WireWriter writer;
  writer.query_partition(session, query_id);
  submit(std::move(writer));
}

std::vector<std::byte> McpdClient::wait_for(wire::FrameType want,
                                            std::uint64_t query_id) {
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    const ReplyKey key = peek_reply(stash_[i]);
    if (key.query_id != query_id ||
        (key.type != want && key.type != wire::FrameType::kError)) {
      continue;
    }
    std::vector<std::byte> doc = std::move(stash_[i]);
    stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
    if (key.type == wire::FrameType::kError) throw_error_reply(doc);
    return doc;
  }
  for (;;) {
    std::vector<std::byte> doc = mailbox_->wait();
    const ReplyKey key = peek_reply(doc);
    if (key.query_id == query_id) {
      if (key.type == want) return doc;
      if (key.type == wire::FrameType::kError) throw_error_reply(doc);
    }
    stash_.push_back(std::move(doc));
  }
}

wire::FrameView McpdClient::wait_reply(std::vector<std::byte>& storage) {
  if (!stash_.empty()) {
    storage = std::move(stash_.back());
    stash_.pop_back();
  } else {
    storage = mailbox_->wait();
  }
  return reply_frame(storage);
}

wire::FaultCountsReply McpdClient::query_faults(std::uint64_t session,
                                                std::uint64_t query_id) {
  post_query_faults(session, query_id);
  const std::vector<std::byte> doc =
      wait_for(wire::FrameType::kFaultCounts, query_id);
  return wire::decode_fault_counts(reply_frame(doc));
}

wire::FaultCurveReply McpdClient::query_fault_curve(std::uint64_t session,
                                                    std::uint64_t query_id,
                                                    std::uint32_t max_k) {
  post_query_fault_curve(session, query_id, max_k);
  const std::vector<std::byte> doc =
      wait_for(wire::FrameType::kFaultCurve, query_id);
  return wire::decode_fault_curve(reply_frame(doc));
}

wire::PartitionAdviceReply McpdClient::query_partition(std::uint64_t session,
                                                       std::uint64_t query_id) {
  post_query_partition(session, query_id);
  const std::vector<std::byte> doc =
      wait_for(wire::FrameType::kPartitionAdvice, query_id);
  return wire::decode_partition_advice(reply_frame(doc));
}

}  // namespace mcp::service
