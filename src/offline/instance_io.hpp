// Text serialization of PIF instances ("mcppif v1") — so hardness-reduction
// artifacts can be saved, shared and decided later (see simtool's
// reduce/decide subcommands).
//
// Format: a small header followed by an embedded mcptrace document:
//
//   mcppif 1
//   cache <K>
//   tau <tau>
//   deadline <t>
//   bounds <b_0> <b_1> ... <b_{p-1}>
//   mcptrace 1
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "offline/instance.hpp"

namespace mcp {

void write_pif_instance(std::ostream& os, const PifInstance& instance);
[[nodiscard]] PifInstance read_pif_instance(std::istream& is);

void save_pif_instance(const std::string& path, const PifInstance& instance);
[[nodiscard]] PifInstance load_pif_instance(const std::string& path);

}  // namespace mcp
