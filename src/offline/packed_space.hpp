// Packed transition system — the cache-friendly expansion kernel behind the
// offline searches (the default `OfflineEngine::kPacked` engine).
//
// State layout, `state_words()` `uint64_t` words per state:
//
//   words[0 .. cache_words)             cache-contents bitset over the page
//                                       universe (present + in flight);
//                                       universe <= 128 pages, so 1–2 words
//   words[cache_words + j/2], lane j%2  core j's word, one uint32 per core:
//                                       (pos << 8) | fetch
//
// `pos` is the core's next request index (< 2^24) and `fetch` the remaining
// blocked steps (<= tau <= 255); supports() validates all three bounds.
//
// expand() mirrors TransitionSystem::expand (state_space.cpp) branch for
// branch — cores in logical order, victims in ascending page order — but
// with zero allocation in steady state: the caller provides a reusable
// StepScratch (PR 3's caller-provided-buffer contract), membership tests are
// bitset probes, victim enumeration iterates set bits of an on-stack word
// snapshot, and outcomes are emitted into a sink the expansion is templated
// over, so the per-outcome relaxation inlines into the kernel (expansion is
// the searches' innermost loop, where even a function_ref's indirect call
// per outcome is measurable).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"
#include "offline/instance.hpp"
#include "offline/state_space.hpp"

namespace mcp {

namespace detail {

inline bool test_bit(const std::uint64_t* words, PageId page) noexcept {
  return (words[page >> 6] >> (page & 63u)) & 1u;
}
inline void set_bit(std::uint64_t* words, PageId page) noexcept {
  words[page >> 6] |= std::uint64_t{1} << (page & 63u);
}
inline void clear_bit(std::uint64_t* words, PageId page) noexcept {
  words[page >> 6] &= ~(std::uint64_t{1} << (page & 63u));
}

}  // namespace detail

/// One admissible outcome of a timestep, viewed over scratch-owned storage.
/// Both spans/pointers are valid only for the duration of the emit call.
struct PackedOutcome {
  const std::uint64_t* next;            ///< successor state words
  std::uint32_t faulted_cores = 0;      ///< bitmask of cores that faulted
  std::span<const PageId> evictions;    ///< victims, faulting-core order
                                        ///< (kInvalidPage = free-cell fault)
  [[nodiscard]] Count fault_count() const noexcept {
    return static_cast<Count>(std::popcount(faulted_cores));
  }
};

class PackedTransitionSystem {
 public:
  static constexpr PageId kMaxUniverse = 128;        ///< two bitset words
  static constexpr std::uint32_t kMaxPosition = (1u << 24) - 1;
  static constexpr Time kMaxTau = 255;
  static constexpr std::size_t kMaxCores = 32;       ///< faulted_cores mask

  /// True iff the instance fits the packed encoding (universe, sequence
  /// length, tau, core-count bounds).  The solvers fall back to the
  /// reference engine when this is false.
  [[nodiscard]] static bool supports(const OfflineInstance& instance);

  PackedTransitionSystem(const OfflineInstance& instance, VictimRule rule);

  /// Words per packed state.
  [[nodiscard]] std::size_t state_words() const noexcept { return stride_; }
  [[nodiscard]] std::size_t num_cores() const noexcept { return p_; }
  [[nodiscard]] const OfflineInstance& instance() const noexcept {
    return *instance_;
  }

  /// Writes the initial state (empty cache, pos = fetch = 0) to `out`.
  void initial(std::uint64_t* out) const;

  /// All requests served (in-flight tails don't matter for fault counts).
  [[nodiscard]] bool is_terminal(const std::uint64_t* state) const;

  /// Reusable expansion scratch — one per thread, handed to every expand().
  struct StepScratch {
    std::vector<std::uint64_t> work;      ///< mutable state copy (stride)
    std::vector<std::uint64_t> locked;    ///< in-flight bitset (cache words)
    std::vector<PageId> evictions;        ///< per-branch victim stack
  };

  /// Invokes `sink(const PackedOutcome&)` once per admissible outcome of the
  /// next timestep.  Copies `state` into `scratch` up front, so `state` may
  /// point into an interner arena that the sink mutates (relaxation interns
  /// successors).
  template <class Sink>
  void expand(const std::uint64_t* state, StepScratch& scratch,
              const Sink& sink) const {
    scratch.work.assign(state, state + stride_);
    scratch.locked.assign(cache_words_, 0);
    scratch.evictions.clear();
    std::size_t fill = 0;
    for (std::size_t w = 0; w < cache_words_; ++w) {
      fill += static_cast<std::size_t>(std::popcount(scratch.work[w]));
    }
    // Pages still in flight at the start of the step are locked: not
    // hit-able, not evictable (the paper's reserved-cell convention).
    for (CoreId j = 0; j < p_; ++j) {
      if (fetch_left(scratch.work.data(), j) > 0) {
        const std::uint32_t pos = position(scratch.work.data(), j);
        MCP_ASSERT(pos > 0);
        detail::set_bit(scratch.locked.data(), (*seqs_[j])[pos - 1]);
      }
    }
    expand_core(0, scratch, /*faulted=*/0, fill, sink);
  }

  /// Conversions to/from the reference representation (tests, differential
  /// harness).  pack() requires the state to fit the encoding.
  void pack(const OfflineState& state, std::uint64_t* out) const;
  [[nodiscard]] OfflineState unpack(const std::uint64_t* state) const;

  /// Core-word accessors, exposed for the solvers and tests.
  [[nodiscard]] std::uint32_t position(const std::uint64_t* state,
                                       CoreId core) const noexcept {
    return core_word(state, core) >> 8;
  }
  [[nodiscard]] std::uint32_t fetch_left(const std::uint64_t* state,
                                         CoreId core) const noexcept {
    return core_word(state, core) & 0xFFu;
  }

 private:
  [[nodiscard]] std::uint32_t core_word(const std::uint64_t* state,
                                        CoreId core) const noexcept {
    const std::uint64_t word = state[cache_words_ + (core >> 1)];
    return static_cast<std::uint32_t>(word >> ((core & 1u) * 32));
  }
  static void set_core_word(std::uint64_t* state, std::size_t cache_words,
                            CoreId core, std::uint32_t value) noexcept {
    std::uint64_t& word = state[cache_words + (core >> 1)];
    const unsigned shift = (core & 1u) * 32;
    word = (word & ~(std::uint64_t{0xFFFFFFFFu} << shift)) |
           (std::uint64_t{value} << shift);
  }

  [[nodiscard]] std::uint32_t next_occurrence(PageId page,
                                              std::uint32_t from) const;

  template <class Sink>
  void expand_core(CoreId core, StepScratch& scratch, std::uint32_t faulted,
                   std::size_t cache_fill, const Sink& sink) const {
    if (core == p_) {
      PackedOutcome outcome;
      outcome.next = scratch.work.data();
      outcome.faulted_cores = faulted;
      outcome.evictions = scratch.evictions;
      sink(outcome);
      return;
    }
    std::uint64_t* work = scratch.work.data();
    const std::uint32_t word = core_word(work, core);
    const std::uint32_t fetch = word & 0xFFu;
    if (fetch > 0) {  // blocked: the fetch ticks down
      set_core_word(work, cache_words_, core, word - 1);
      expand_core(core + 1, scratch, faulted, cache_fill, sink);
      set_core_word(scratch.work.data(), cache_words_, core, word);
      return;
    }
    const std::uint32_t pos = word >> 8;
    const RequestSequence& seq = *seqs_[core];
    if (pos >= seq.size()) {  // finished
      expand_core(core + 1, scratch, faulted, cache_fill, sink);
      return;
    }
    const PageId page = seq[pos];
    const bool locked = detail::test_bit(scratch.locked.data(), page);
    if (detail::test_bit(work, page) && !locked) {
      // Hit: consumes this step only.
      set_core_word(work, cache_words_, core, word + (1u << 8));
      expand_core(core + 1, scratch, faulted, cache_fill, sink);
      set_core_word(scratch.work.data(), cache_words_, core, word);
      return;
    }
    MCP_ASSERT_MSG(!locked, "disjoint input requested an in-flight page");
    // Fault: advance, block for tau, branch over the admissible victims.
    const std::uint32_t faulting_word = ((pos + 1) << 8) | tau_;
    set_core_word(work, cache_words_, core, faulting_word);
    faulted |= 1u << core;
    if (cache_fill < cache_size_) {
      // Honest: no eviction while a cell is free.
      detail::set_bit(work, page);
      detail::set_bit(scratch.locked.data(), page);
      scratch.evictions.push_back(kInvalidPage);
      expand_core(core + 1, scratch, faulted, cache_fill + 1, sink);
      scratch.evictions.pop_back();
      detail::clear_bit(scratch.locked.data(), page);
      detail::clear_bit(scratch.work.data(), page);
    } else {
      // On-stack snapshot of the candidate bitset: deeper recursion mutates
      // the cache words, but iteration walks this frozen copy — ascending
      // page order, matching the reference's sorted candidate list.
      std::array<std::uint64_t, kMaxUniverse / 64> candidates{};
      victim_bits(scratch, candidates.data());
      for (std::size_t w = 0; w < cache_words_; ++w) {
        std::uint64_t bits = candidates[w];
        while (bits != 0) {
          const auto b = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const PageId victim = static_cast<PageId>(w * 64 + b);
          std::uint64_t* cur = scratch.work.data();
          detail::clear_bit(cur, victim);
          detail::set_bit(cur, page);
          detail::set_bit(scratch.locked.data(), page);
          scratch.evictions.push_back(victim);
          expand_core(core + 1, scratch, faulted, cache_fill, sink);
          scratch.evictions.pop_back();
          cur = scratch.work.data();
          detail::clear_bit(scratch.locked.data(), page);
          detail::clear_bit(cur, page);
          detail::set_bit(cur, victim);
        }
      }
    }
    set_core_word(scratch.work.data(), cache_words_, core, word);
  }

  /// Victim-candidate bitset (evictable = cached, not locked, rule-filtered)
  /// written to `out[0..cache_words_)`.
  void victim_bits(const StepScratch& scratch, std::uint64_t* out) const;

  const OfflineInstance* instance_;
  VictimRule rule_;
  std::size_t p_;
  PageId universe_size_ = 0;
  std::size_t cache_words_ = 1;
  std::size_t stride_ = 2;
  std::uint32_t tau_ = 0;
  std::size_t cache_size_ = 0;
  std::vector<CoreId> owner_;                            ///< page -> core
  std::vector<std::vector<std::uint32_t>> occurrences_;  ///< page -> indices
  std::vector<const RequestSequence*> seqs_;             ///< core -> sequence
};

}  // namespace mcp
