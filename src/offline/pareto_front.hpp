// Packed Pareto fronts for the PIF layered DP (pif_solver.cpp) — extracted
// so the insertion kernel and its checked-build validator are directly
// testable (tests/test_sentry.cpp injects corrupted fronts).
//
// A front is the Pareto-minimal set of per-core fault vectors reaching one
// interned state, stored flat (`p` uint32 counters per entry) and sorted
// lexicographically, with parallel provenance.  The sorted order carries the
// pruning structure: an entry can only be dominated by lexicographically
// smaller entries and can only dominate lexicographically larger ones, so
// both scans cover half the front — and for p == 2 the staircase invariant
// (first coordinate strictly increasing, second strictly decreasing)
// collapses them to a binary search plus one contiguous erase.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "core/sentry.hpp"
#include "core/types.hpp"

namespace mcp {

/// Entry provenance inside a packed layer (schedule mode).
struct ParetoProv {
  std::uint32_t parent_state = 0;  ///< state index in the previous layer
  std::uint32_t parent_entry = 0;  ///< entry index in that state's front
  std::uint32_t evict_off = 0;     ///< span into the layer's evict_pool
  std::uint32_t evict_len = 0;
};

/// Pareto frontier of one state: entries sorted lexicographically by fault
/// vector (flat, p words per entry) with parallel provenance.
struct PackedFront {
  std::vector<std::uint32_t> faults;  ///< size() * p fault counters
  std::vector<ParetoProv> prov;

  [[nodiscard]] std::size_t size() const noexcept { return prov.size(); }
  [[nodiscard]] const std::uint32_t* entry(std::size_t p_,
                                           std::size_t e) const noexcept {
    return faults.data() + e * p_;
  }
};

/// true iff a[i] <= b[i] for all i in [0, p).
inline bool dominates_flat(const std::uint32_t* a, const std::uint32_t* b,
                           std::size_t p) noexcept {
  for (std::size_t i = 0; i < p; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// Inserts `fv` unless dominated; removes entries it dominates; keeps the
/// front sorted.  Returns false if rejected.  Allocation discipline: the
/// search/dominance scans are allocation-free; only the final splice may
/// grow the front's buffers (declared amortized growth — buffers are
/// recycled across layers by the solver).
inline bool pareto_insert_packed(PackedFront& front, std::size_t p,
                                 const std::uint32_t* fv,
                                 const ParetoProv& prov) {
  const std::size_t n = front.size();
  // Binary search: first entry lexicographically greater than fv.
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const std::uint32_t* e = front.entry(p, mid);
    if (std::lexicographical_compare(fv, fv + p, e, e + p)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t pos = lo;  // entries [0,pos) are lex <= fv (incl. equal)

  // Dominated check: only lexicographically smaller-or-equal entries can
  // dominate fv (dominance implies lex <=); an equal vector also lands in
  // [0,pos) and rejects the duplicate.
  if (p == 2) {
    // Staircase: among [0,pos) the second coordinate is minimal at pos-1.
    if (pos > 0 && front.entry(p, pos - 1)[1] <= fv[1]) return false;
  } else {
    for (std::size_t e = 0; e < pos; ++e) {
      if (dominates_flat(front.entry(p, e), fv, p)) return false;
    }
  }

  // Removal: fv can only dominate lexicographically larger entries.
  std::size_t first_removed = pos;
  std::size_t removed = 0;
  if (p == 2) {
    // Dominated entries form a contiguous run at pos (second coordinate is
    // descending and every entry past pos has first coordinate >= fv[0]).
    while (first_removed + removed < n &&
           front.entry(p, first_removed + removed)[1] >= fv[1]) {
      ++removed;
    }
  } else {
    // Compact the survivors of [pos, n) in place.
    std::size_t write = pos;
    for (std::size_t e = pos; e < n; ++e) {
      if (dominates_flat(fv, front.entry(p, e), p)) continue;
      if (write != e) {
        std::copy_n(front.entry(p, e), p, front.faults.data() + write * p);
        front.prov[write] = front.prov[e];
      }
      ++write;
    }
    removed = n - write;
    first_removed = write;  // tail [write, n) is now garbage
  }
  const auto off = [](std::size_t i) {
    return static_cast<std::ptrdiff_t>(i);
  };
  // Declared amortized growth point: the splice below may grow the front's
  // recycled buffers.
  AllocAllow allow;
  if (removed > 0) {
    front.faults.erase(
        front.faults.begin() + off(first_removed * p),
        front.faults.begin() + off((first_removed + removed) * p));
    front.prov.erase(front.prov.begin() + off(first_removed),
                     front.prov.begin() + off(first_removed + removed));
  }
  front.faults.insert(front.faults.begin() + off(pos * p), fv, fv + p);
  front.prov.insert(front.prov.begin() + off(pos), prov);
  return true;
}

/// Deep structural invariant check (the checked-build validator, DESIGN.md
/// §10): storage consistency, strict lexicographic sortedness (which also
/// forbids duplicates), and strict domination-freedom between every pair.
/// Throws ModelError naming the violated invariant.  O(size² · p); invoked
/// per merged layer under MCP_CHECKED and callable from tests in any build.
inline void validate_front(const PackedFront& front, std::size_t p) {
  MCP_ASSERT_MSG(front.faults.size() == front.prov.size() * p,
                 "front validate: fault storage size != entries * p");
  const std::size_t n = front.size();
  for (std::size_t e = 0; e + 1 < n; ++e) {
    const std::uint32_t* a = front.entry(p, e);
    const std::uint32_t* b = front.entry(p, e + 1);
    MCP_ASSERT_MSG(std::lexicographical_compare(a, a + p, b, b + p),
                   "front validate: entries not strictly lex-sorted");
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      MCP_ASSERT_MSG(!dominates_flat(front.entry(p, a), front.entry(p, b), p),
                     "front validate: entry dominates another (not minimal)");
    }
  }
}

}  // namespace mcp
