// Honesty auditing (the paper's Theorem 4 vocabulary).
//
// A strategy is *honest* if it never evicts a page except to make room for
// a fault — no voluntary evictions, at most one eviction per fault, and
// only when the cache is full.  Theorem 4 shows an honest optimum exists
// for FTF on disjoint inputs; this observer lets tests assert which of our
// strategies are honest (all shared/static ones) and which are not (staged
// dynamic partitions shrink voluntarily).
#pragma once

#include <string>
#include <vector>

#include "core/events.hpp"

namespace mcp {

class HonestyChecker final : public SimObserver {
 public:
  void on_step_begin(Time /*now*/) override { faults_this_step_ = 0; }
  void on_fault(const AccessContext& /*ctx*/) override {
    ++faults_this_step_;
    evictions_since_fault_ = 0;
  }
  void on_evict(PageId page, CoreId /*core*/, Time now,
                EvictionCause cause) override {
    if (cause == EvictionCause::kVoluntary) {
      violations_.push_back("voluntary eviction of page " +
                            std::to_string(page) + " at t=" +
                            std::to_string(now));
      return;
    }
    if (faults_this_step_ == 0) {
      violations_.push_back("fault-eviction with no fault this step at t=" +
                            std::to_string(now));
    } else if (++evictions_since_fault_ > 1) {
      violations_.push_back("multiple evictions for one fault at t=" +
                            std::to_string(now));
    }
  }

  [[nodiscard]] bool honest() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

 private:
  int faults_this_step_ = 0;
  int evictions_since_fault_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace mcp
