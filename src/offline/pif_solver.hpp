// PARTIAL-INDIVIDUAL-FAULTS decision solver — the paper's Algorithm 2.
//
// Layered breadth-first search over timesteps: layer t holds every reachable
// (cache, positions, fetch) state together with the Pareto frontier of
// per-core fault vectors that reach it by time t.  Vectors exceeding the
// bounds are pruned immediately (they can never recover — faults are
// monotone), dominated vectors are dropped (the paper's pair lists, with
// dominance pruning added), and the search succeeds as soon as a state
// survives at the deadline, or every sequence finishes within bounds before
// it.  Worst case matches Theorem 7's O(n^{K+2p+1} (tau+1)^{p+1}).
//
// Fault accounting matches RunStats::faults_before: a fault counts against
// time t iff its request was issued at a step strictly before t.
//
// Restriction (documented in DESIGN.md): the search explores honest
// schedules (evict exactly one page per fault, only when the cache is
// full).  Theorem 4 justifies this for total faults; the paper leaves the
// dishonest-PIF question open.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "offline/checkpoint.hpp"
#include "offline/instance.hpp"
#include "offline/spill_arena.hpp"
#include "offline/state_space.hpp"

namespace mcp {

struct PifOptions {
  VictimRule victim_rule = VictimRule::kAllPages;
  /// Abort (throw ModelError) if a layer ever holds more than this many
  /// (state, vector) pairs; 0 = no limit.
  std::size_t max_layer_width = 0;
  /// Retain parent chains and, on a feasible instance, produce a witness
  /// eviction schedule replayable through the simulator (costs memory
  /// proportional to deadline x layer width).
  bool build_schedule = false;
  /// Search implementation.  kPacked runs the layered DP over interned
  /// bitset states with layer expansion fanned out on mcp::ThreadPool;
  /// kReference is the retained serial unordered_map implementation.
  OfflineEngine engine = OfflineEngine::kPacked;
  /// Worker cap for the packed engine's layer-parallel expansion (0 = all
  /// pool workers).  Results are bit-identical at any worker count: states
  /// are partitioned into fixed-size chunks by layer index, each chunk's
  /// emissions are produced in serial order, and chunks merge in index
  /// order regardless of which worker ran them.
  std::size_t workers = 0;
  /// Interner pre-sizing hint: expected distinct states of the solve
  /// (0 = a small default).  Right-sizing it eliminates the early
  /// arena/table doubling churn inside guarded hot loops.
  std::size_t expected_states = 0;
  /// Spill budget (packed engine): makes the interner arena file-backed and
  /// moves finished schedule-mode layer history into a spill file, so the
  /// DP can exceed RAM.  Active budgets force the serial expansion path
  /// (the spill layer's residency accounting is not concurrency-safe).
  StorageBudget storage;
  /// Layer-boundary checkpointing (packed engine); resume produces results
  /// bit-equal to an uninterrupted solve.
  CheckpointOptions checkpoint;
  /// Allocation sentry (DESIGN.md §10, packed engine only): arm an
  /// AllocGuard over every DP layer with index >= this value (0 = disabled),
  /// on the merging thread and inside each expansion chunk.  Enforces the §9
  /// steady-state claim: past warm-up, a layer allocates only at the
  /// declared amortized growth points (interner arena/table, layer/front
  /// recycling pools, chunk emission buffers, pool dispatch) — anything
  /// else, e.g. a reintroduced per-emission temporary, throws ModelError.
  Time alloc_guard_after_layer = 0;
};

struct PifResult {
  bool feasible = false;
  std::size_t states_expanded = 0;
  std::size_t peak_layer_width = 0;  ///< max (state, vector) pairs in a layer
  Time decided_at = 0;               ///< layer at which the answer was fixed
  /// Witness schedule (one entry per fault, in the global fault order the
  /// simulator charges them) — only when feasible and
  /// PifOptions::build_schedule.  It covers the faults up to the decision
  /// point; behaviour after the deadline is immaterial to PIF, so
  /// verification replays it with an LRU fallback for the remainder (see
  /// verify_pif_witness).
  std::vector<PageId> schedule;
  /// Storage accounting (packed engine): interner high-water resident bytes
  /// plus the layer-history log, and cumulative bytes written to spill
  /// files (0 without a StorageBudget).
  std::size_t peak_bytes_in_ram = 0;
  std::size_t bytes_spilled = 0;
  /// True when the solve continued from PifOptions::checkpoint.
  bool resumed = false;
};

/// Replays `schedule` (LRU after it is exhausted) on the instance and
/// returns whether the per-core bounds hold at the deadline.
[[nodiscard]] bool verify_pif_witness(const PifInstance& instance,
                                      const std::vector<PageId>& schedule);

/// Decides the PIF instance exactly (within honest schedules).
[[nodiscard]] PifResult solve_pif(const PifInstance& instance,
                                  const PifOptions& options = {});

}  // namespace mcp
