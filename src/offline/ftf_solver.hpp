// Optimal FINAL-TOTAL-FAULTS solver — the paper's Algorithm 1.
//
// The paper fills a (p+1)-dimensional table over (cache configuration,
// position vector); we run the equivalent search as Dijkstra over the
// TransitionSystem (cost = faults per step), which visits only *reachable*
// configurations — typically a tiny fraction of the full table — while
// computing the same optimum.  Complexity is the paper's
// O(n^{K+p} (tau+1)^p) in the worst case (Theorem 6): polynomial in the
// sequence length for constant K and p, exponential in K and p.
//
// With VictimRule::kFitfPerSequence the search only ever evicts, within the
// chosen core, the page requested furthest in that core's future — by
// Theorem 5 this restriction preserves optimality on disjoint inputs, and
// experiment E11 verifies the two searches agree.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "offline/instance.hpp"
#include "offline/state_space.hpp"

namespace mcp {

struct FtfOptions {
  VictimRule victim_rule = VictimRule::kAllPages;
  /// Reconstruct an optimal eviction schedule (costs parent-pointer memory).
  bool build_schedule = false;
  /// Abort (throw ModelError) after storing this many states; 0 = no limit.
  std::size_t max_states = 0;
  /// Search implementation.  kPacked runs Dial's bucket-queue shortest path
  /// over interned bitset states (edge weights are 0..p faults per step, so
  /// distances are dense); kReference is the retained binary-heap Dijkstra
  /// over OfflineState nodes.  Both compute the same optimum.
  OfflineEngine engine = OfflineEngine::kPacked;
  /// Allocation sentry (DESIGN.md §10, packed engine only): arm an
  /// AllocGuard over every state expansion after the first (the first call
  /// warms the step scratch).  Enforces the §9 claim that the packed
  /// expansion kernel is allocation-free: only the relaxation sink's
  /// declared amortized growth (interner arena/table, distance/bucket
  /// arrays) may allocate; anything inside the kernel throws ModelError.
  bool alloc_guard = false;
};

// Design note: cache-superset dominance pruning (drop a state whose cache
// is a subset of an already-relaxed state at the same positions) was
// prototyped and measured to be vacuous here: under honest transitions the
// fault distance equals the cache fill level until saturation, so two
// states sharing positions either have incomparable caches or equal ones.
// The experiment lives in the git history; the searches stay paper-literal.

struct FtfResult {
  Count min_faults = 0;
  /// One entry per fault of the optimal schedule, in the global order the
  /// simulator charges faults (step by step, core order within a step):
  /// the victim evicted for that fault, or kInvalidPage if none was needed.
  /// Empty unless FtfOptions::build_schedule.
  std::vector<PageId> schedule;
  std::size_t states_expanded = 0;
  std::size_t states_stored = 0;
};

/// Minimum total faults to serve the instance (exact).
[[nodiscard]] FtfResult solve_ftf(const OfflineInstance& instance,
                                  const FtfOptions& options = {});

}  // namespace mcp
