// Optimal FINAL-TOTAL-FAULTS solver — the paper's Algorithm 1.
//
// The paper fills a (p+1)-dimensional table over (cache configuration,
// position vector); we run the equivalent search as Dijkstra over the
// TransitionSystem (cost = faults per step), which visits only *reachable*
// configurations — typically a tiny fraction of the full table — while
// computing the same optimum.  Complexity is the paper's
// O(n^{K+p} (tau+1)^p) in the worst case (Theorem 6): polynomial in the
// sequence length for constant K and p, exponential in K and p.
//
// With VictimRule::kFitfPerSequence the search only ever evicts, within the
// chosen core, the page requested furthest in that core's future — by
// Theorem 5 this restriction preserves optimality on disjoint inputs, and
// experiment E11 verifies the two searches agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "offline/checkpoint.hpp"
#include "offline/instance.hpp"
#include "offline/spill_arena.hpp"
#include "offline/state_space.hpp"

namespace mcp {

struct FtfOptions {
  VictimRule victim_rule = VictimRule::kAllPages;
  /// Reconstruct an optimal eviction schedule (costs parent-pointer memory).
  bool build_schedule = false;
  /// Abort (throw ModelError) after storing this many states; 0 = no limit.
  std::size_t max_states = 0;
  /// Search implementation.  kPacked runs Dial's bucket-queue shortest path
  /// over interned bitset states (edge weights are 0..p faults per step, so
  /// distances are dense); kReference is the retained binary-heap Dijkstra
  /// over OfflineState nodes.  Both compute the same optimum.
  OfflineEngine engine = OfflineEngine::kPacked;
  /// Worker cap for the packed engine's bucket-synchronous parallel
  /// expansion (0 = all pool workers, 1 = the serial reference path).
  /// Results are bit-identical at any worker count: each settled bucket is
  /// expanded as chunked waves whose emissions are recorded in serial sink
  /// order and merged in chunk order regardless of which worker ran them
  /// (see the determinism note in ftf_solver.cpp).
  std::size_t workers = 0;
  /// Interner pre-sizing hint: expected distinct states of the solve
  /// (0 = a small default).  Right-sizing it eliminates the early
  /// arena/table doubling churn inside guarded hot loops.
  std::size_t expected_states = 0;
  /// Spill budget for the interner arena (packed engine).  Active budgets
  /// make the state store file-backed — "instance too big" becomes
  /// "instance takes longer" — and force the serial expansion path (the
  /// spill layer's residency accounting is not concurrency-safe).
  StorageBudget storage;
  /// Bucket-boundary checkpointing (packed engine); resume produces results
  /// bit-equal to an uninterrupted solve.
  CheckpointOptions checkpoint;
  /// Allocation sentry (DESIGN.md §10, packed engine only): arm an
  /// AllocGuard over every state expansion after the first (the first call
  /// warms the step scratch).  Enforces the §9 claim that the packed
  /// expansion kernel is allocation-free: only the relaxation sink's
  /// declared amortized growth (interner arena/table, distance/bucket
  /// arrays) may allocate; anything inside the kernel throws ModelError.
  bool alloc_guard = false;
};

// Design note: cache-superset dominance pruning (drop a state whose cache
// is a subset of an already-relaxed state at the same positions) was
// prototyped and measured to be vacuous here: under honest transitions the
// fault distance equals the cache fill level until saturation, so two
// states sharing positions either have incomparable caches or equal ones.
// The experiment lives in the git history; the searches stay paper-literal.

struct FtfResult {
  Count min_faults = 0;
  /// One entry per fault of the optimal schedule, in the global order the
  /// simulator charges faults (step by step, core order within a step):
  /// the victim evicted for that fault, or kInvalidPage if none was needed.
  /// Empty unless FtfOptions::build_schedule.
  std::vector<PageId> schedule;
  std::size_t states_expanded = 0;
  std::size_t states_stored = 0;
  /// Storage accounting (packed engine): logical state-arena bytes (the
  /// spillable quantity — states * stride words; what a StorageBudget is
  /// sized against), interner high-water resident bytes (arena segments +
  /// hashes + table), and cumulative bytes written back to the spill file
  /// (0 without a StorageBudget).
  std::size_t arena_bytes = 0;
  std::size_t peak_bytes_in_ram = 0;
  std::size_t bytes_spilled = 0;
  /// Parallel-expansion work decomposition (packed engine, chunked path):
  /// wall ns spent inside the parallel expansion passes and the summed
  /// per-chunk CLOCK_THREAD_CPUTIME_ID ns.  BENCH_OFFLINE's
  /// capacity_states_per_sec projects the solve rate at W workers as
  /// states / (serial_ns + expand_busy_ns / W) — the oversubscription-
  /// immune convention capacity_rps established for mcpd.
  std::uint64_t expand_wall_ns = 0;
  std::uint64_t expand_busy_ns = 0;
  /// True when the solve continued from FtfOptions::checkpoint.
  bool resumed = false;
};

/// Minimum total faults to serve the instance (exact).
[[nodiscard]] FtfResult solve_ftf(const OfflineInstance& instance,
                                  const FtfOptions& options = {});

}  // namespace mcp
