#include "offline/packed_state.hpp"

#include "core/error.hpp"
#include "core/sentry.hpp"

namespace mcp {

namespace {

constexpr std::size_t kInitialTableSize = 64;  // power of two

}  // namespace

StateInterner::StateInterner(std::size_t stride, StorageBudget budget)
    : stride_(stride), arena_(stride, std::move(budget)) {
  MCP_REQUIRE(stride > 0, "StateInterner: zero stride");
  table_.assign(kInitialTableSize, kNoState);
}

void StateInterner::rehash(std::size_t target) {
  // Declared amortized growth point: table rebuilds are part of the
  // interner's O(1)-amortized contract and exempt from allocation guards.
  AllocAllow allow;
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(target, kNoState);
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t id : old) {
    if (id == kNoState) continue;
    std::size_t slot = static_cast<std::size_t>(hashes_[id]) & mask;
    while (table_[slot] != kNoState) slot = (slot + 1) & mask;
    table_[slot] = id;
  }
}

void StateInterner::grow_table() {
  // 4x growth: rebuilds touch every stored id, so fewer, larger steps beat
  // doubling (total rebuild work ~1.3x final size instead of ~2x).
  rehash(table_.size() * 4);
}

std::pair<std::uint32_t, bool> StateInterner::insert_new(
    const std::uint64_t* words, std::uint64_t hash, std::size_t slot) {
  // Declared amortized growth point: arena/hash-array appends may grow
  // their buffers; everything else about interning is allocation-free.
  AllocAllow allow;
  const std::uint32_t id = count_++;
  MCP_ASSERT_MSG(id != kNoState, "StateInterner: id space exhausted");
  const std::uint32_t arena_id = arena_.append(words);
  MCP_ASSERT_MSG(arena_id == id, "StateInterner: arena/id desync");
  hashes_.push_back(hash);
  table_[slot] = id;
  return {id, true};
}

void StateInterner::validate() const {
  // The validator's own scratch is declared: it may run inside a guarded
  // region (checked builds arm guards and validators together).
  AllocAllow allow;

  // Live-id density: ids are 0..count_-1, each backed by exactly one arena
  // block and one stored hash; the arena's segment directory and (under a
  // budget) every spill-segment header check out.
  MCP_ASSERT_MSG(arena_.size() == count_,
                 "interner validate: arena block count != count");
  arena_.validate();
  MCP_ASSERT_MSG(hashes_.size() == count_,
                 "interner validate: stored-hash array size != count");
  MCP_ASSERT_MSG(table_.size() >= kInitialTableSize &&
                     (table_.size() & (table_.size() - 1)) == 0,
                 "interner validate: table size not a power of two");

  // Stored-hash consistency: every per-id hash re-derives from its block
  // (catches both a mutated hash and a mutated arena block).
  for (std::uint32_t id = 0; id < count_; ++id) {
    MCP_ASSERT_MSG(hashes_[id] == hash_block(state(id)),
                   "interner validate: stored hash disagrees with block");
  }

  // Table integrity: every live id claims exactly one slot, no stray ids.
  std::vector<bool> in_table(count_, false);
  std::size_t live_slots = 0;
  for (const std::uint32_t id : table_) {
    if (id == kNoState) continue;
    ++live_slots;
    MCP_ASSERT_MSG(id < count_, "interner validate: table entry out of range");
    MCP_ASSERT_MSG(!in_table[id],
                   "interner validate: id claims two table slots");
    in_table[id] = true;
  }
  MCP_ASSERT_MSG(live_slots == count_,
                 "interner validate: table is missing live ids");

  // No duplicate packed states: the probe chain from every id's home slot
  // must reach the id itself before any other id with an equal block (a
  // duplicate would make one of the two unreachable by lookup).
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t id = 0; id < count_; ++id) {
    std::size_t slot = static_cast<std::size_t>(hashes_[id]) & mask;
    for (;;) {
      const std::uint32_t entry = table_[slot];
      MCP_ASSERT_MSG(entry != kNoState,
                     "interner validate: id unreachable from its home slot");
      if (hashes_[entry] == hashes_[id] && block_equal(entry, state(id))) {
        MCP_ASSERT_MSG(entry == id,
                       "interner validate: duplicate packed state stored");
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
}

void StateInterner::reserve(std::size_t states) {
  AllocAllow allow;
  arena_.reserve(states);
  hashes_.reserve(states);
  std::size_t target = table_.size();
  while (target * 7 < states * 10) target *= 2;
  if (target > table_.size()) rehash(target);
}

}  // namespace mcp
