#include "offline/packed_state.hpp"

#include "core/error.hpp"

namespace mcp {

namespace {

constexpr std::size_t kInitialTableSize = 64;  // power of two

}  // namespace

StateInterner::StateInterner(std::size_t stride) : stride_(stride) {
  MCP_REQUIRE(stride > 0, "StateInterner: zero stride");
  table_.assign(kInitialTableSize, kNoState);
}

void StateInterner::rehash(std::size_t target) {
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(target, kNoState);
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t id : old) {
    if (id == kNoState) continue;
    std::size_t slot = static_cast<std::size_t>(hashes_[id]) & mask;
    while (table_[slot] != kNoState) slot = (slot + 1) & mask;
    table_[slot] = id;
  }
}

void StateInterner::grow_table() {
  // 4x growth: rebuilds touch every stored id, so fewer, larger steps beat
  // doubling (total rebuild work ~1.3x final size instead of ~2x).
  rehash(table_.size() * 4);
}

std::pair<std::uint32_t, bool> StateInterner::insert_new(
    const std::uint64_t* words, std::uint64_t hash, std::size_t slot) {
  const std::uint32_t id = count_++;
  MCP_ASSERT_MSG(id != kNoState, "StateInterner: id space exhausted");
  arena_.insert(arena_.end(), words, words + stride_);
  hashes_.push_back(hash);
  table_[slot] = id;
  return {id, true};
}

void StateInterner::reserve(std::size_t states) {
  arena_.reserve(states * stride_);
  hashes_.reserve(states);
  std::size_t target = table_.size();
  while (target * 7 < states * 10) target *= 2;
  if (target > table_.size()) rehash(target);
}

}  // namespace mcp
