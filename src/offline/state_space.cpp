#include "offline/state_space.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/error.hpp"

namespace mcp {

namespace {
constexpr std::uint32_t kNever = std::numeric_limits<std::uint32_t>::max();

std::size_t hash_mix(std::size_t seed, std::size_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
}  // namespace

std::size_t OfflineStateHash::operator()(const OfflineState& s) const noexcept {
  std::size_t h = 0x12345678;
  for (PageId page : s.cache) h = hash_mix(h, page);
  h = hash_mix(h, 0xABCD);
  for (std::uint32_t v : s.pos) h = hash_mix(h, v);
  for (std::uint32_t v : s.fetch) h = hash_mix(h, v);
  return h;
}

void OfflineInstance::validate() const {
  MCP_REQUIRE(cache_size > 0, "offline instance: cache_size must be positive");
  MCP_REQUIRE(requests.num_cores() > 0, "offline instance: no cores");
  MCP_REQUIRE(requests.is_disjoint(),
              "offline algorithms require a disjoint request set");
}

void PifInstance::validate() const {
  base.validate();
  MCP_REQUIRE(bounds.size() == base.requests.num_cores(),
              "PIF instance: one bound per core required");
}

TransitionSystem::TransitionSystem(const OfflineInstance& instance,
                                   VictimRule rule)
    : instance_(&instance), rule_(rule), p_(instance.requests.num_cores()) {
  instance.validate();
  universe_size_ = instance.requests.page_bound();
  owner_ = instance.requests.owner_map(universe_size_);
  occurrences_.resize(universe_size_);
  for (CoreId core = 0; core < p_; ++core) {
    const RequestSequence& seq = instance.requests.sequence(core);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      occurrences_[seq[i]].push_back(static_cast<std::uint32_t>(i));
    }
  }
}

OfflineState TransitionSystem::initial() const {
  OfflineState state;
  state.pos.assign(p_, 0);
  state.fetch.assign(p_, 0);
  return state;
}

bool TransitionSystem::is_terminal(const OfflineState& state) const {
  for (CoreId j = 0; j < p_; ++j) {
    if (state.pos[j] < instance_->requests.sequence(j).size()) return false;
  }
  return true;
}

std::uint32_t TransitionSystem::next_occurrence(PageId page,
                                                std::uint32_t from) const {
  MCP_REQUIRE(page < universe_size_, "next_occurrence: unknown page");
  const auto& occ = occurrences_[page];
  const auto it = std::lower_bound(occ.begin(), occ.end(), from);
  return it == occ.end() ? kNever : *it;
}

CoreId TransitionSystem::owner_of(PageId page) const {
  MCP_REQUIRE(page < universe_size_, "owner_of: unknown page");
  return owner_[page];
}

// Mutable working set threaded through the per-core recursion of one step.
struct TransitionSystem::StepScratch {
  std::unordered_set<PageId> cache;       // current cache contents
  std::unordered_set<PageId> locked;      // in-flight (start of step + new faults)
  std::vector<std::uint32_t> pos;
  std::vector<std::uint32_t> fetch;
  std::uint32_t faulted = 0;
  std::vector<PageId> evictions;
};

void TransitionSystem::expand(const OfflineState& state,
                              const std::function<void(StepOutcome&&)>& emit) const {
  StepScratch scratch;
  scratch.cache.insert(state.cache.begin(), state.cache.end());
  scratch.pos = state.pos;
  scratch.fetch = state.fetch;
  // Pages still in flight at the start of the step are locked: not hit-able,
  // not evictable (the paper's reserved-cell convention).
  for (CoreId j = 0; j < p_; ++j) {
    if (state.fetch[j] > 0) {
      MCP_ASSERT(state.pos[j] > 0);
      scratch.locked.insert(instance_->requests.sequence(j)[state.pos[j] - 1]);
    }
  }
  expand_core(0, scratch, emit);
}

std::vector<PageId> TransitionSystem::victim_candidates(
    const StepScratch& scratch, CoreId /*faulting_core*/) const {
  std::vector<PageId> evictable;
  evictable.reserve(scratch.cache.size());
  for (PageId page : scratch.cache) {
    if (!scratch.locked.contains(page)) evictable.push_back(page);
  }
  std::sort(evictable.begin(), evictable.end());
  if (rule_ == VictimRule::kAllPages || evictable.empty()) return evictable;

  // Theorem 5: for each core c, only the evictable page of R_c whose next
  // request in R_c is furthest (never-again counts as infinitely far).
  std::vector<PageId> best_per_core(p_, kInvalidPage);
  std::vector<std::uint64_t> best_dist(p_, 0);
  for (PageId page : evictable) {
    const CoreId c = owner_[page];
    const std::uint32_t next = next_occurrence(page, scratch.pos[c]);
    const std::uint64_t dist =
        next == kNever ? std::numeric_limits<std::uint64_t>::max() : next;
    if (best_per_core[c] == kInvalidPage || dist > best_dist[c]) {
      best_per_core[c] = page;
      best_dist[c] = dist;
    }
  }
  std::vector<PageId> candidates;
  for (CoreId c = 0; c < p_; ++c) {
    if (best_per_core[c] != kInvalidPage) candidates.push_back(best_per_core[c]);
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

void TransitionSystem::emit_outcome(
    StepScratch& scratch, const std::function<void(StepOutcome&&)>& emit) const {
  StepOutcome outcome;
  outcome.next.cache.assign(scratch.cache.begin(), scratch.cache.end());
  std::sort(outcome.next.cache.begin(), outcome.next.cache.end());
  outcome.next.pos = scratch.pos;
  outcome.next.fetch = scratch.fetch;
  outcome.faulted_cores = scratch.faulted;
  outcome.evictions = scratch.evictions;
  emit(std::move(outcome));
}

void TransitionSystem::expand_core(
    std::size_t core, StepScratch& scratch,
    const std::function<void(StepOutcome&&)>& emit) const {
  if (core == p_) {
    emit_outcome(scratch, emit);
    return;
  }
  const CoreId j = static_cast<CoreId>(core);
  if (scratch.fetch[j] > 0) {  // blocked: the fetch ticks down
    --scratch.fetch[j];
    expand_core(core + 1, scratch, emit);
    ++scratch.fetch[j];
    return;
  }
  const RequestSequence& seq = instance_->requests.sequence(j);
  if (scratch.pos[j] >= seq.size()) {  // finished
    expand_core(core + 1, scratch, emit);
    return;
  }
  const PageId page = seq[scratch.pos[j]];
  if (scratch.cache.contains(page) && !scratch.locked.contains(page)) {
    // Hit: consumes this step only.
    ++scratch.pos[j];
    expand_core(core + 1, scratch, emit);
    --scratch.pos[j];
    return;
  }
  MCP_ASSERT_MSG(!scratch.locked.contains(page),
                 "disjoint input requested an in-flight page");
  // Fault.
  ++scratch.pos[j];
  scratch.fetch[j] = static_cast<std::uint32_t>(instance_->tau);
  scratch.faulted |= 1u << j;
  if (scratch.cache.size() < instance_->cache_size) {
    // Honest: no eviction while a cell is free.
    scratch.cache.insert(page);
    scratch.locked.insert(page);
    scratch.evictions.push_back(kInvalidPage);
    expand_core(core + 1, scratch, emit);
    scratch.evictions.pop_back();
    scratch.locked.erase(page);
    scratch.cache.erase(page);
  } else {
    for (PageId victim : victim_candidates(scratch, j)) {
      scratch.cache.erase(victim);
      scratch.cache.insert(page);
      scratch.locked.insert(page);
      scratch.evictions.push_back(victim);
      expand_core(core + 1, scratch, emit);
      scratch.evictions.pop_back();
      scratch.locked.erase(page);
      scratch.cache.erase(page);
      scratch.cache.insert(victim);
    }
  }
  scratch.faulted &= ~(1u << j);
  scratch.fetch[j] = 0;
  --scratch.pos[j];
}

}  // namespace mcp
