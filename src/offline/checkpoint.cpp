#include "offline/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/error.hpp"
#include "offline/packed_state.hpp"

namespace mcp::checkpoint {

namespace {

constexpr std::uint64_t kMagic = 0x6d63705f63686b70ULL;  // "mcp_chkp"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderWords = 3;  // magic, version|kind, fingerprint

[[noreturn]] void throw_input(const std::string& path, const std::string& why) {
  throw InputError("checkpoint '" + path + "': " + why);
}

[[noreturn]] void throw_io(const std::string& path, const char* what) {
  std::ostringstream os;
  os << what << " failed: " << std::strerror(errno);
  throw_input(path, os.str());
}

}  // namespace

std::uint64_t fold(std::uint64_t h, std::uint64_t word) noexcept {
  return detail::mix64(h ^ word);
}

std::uint64_t fingerprint(const OfflineInstance& instance) {
  std::uint64_t h = fold(0x6f66666c696e6530ULL, instance.cache_size);
  h = fold(h, instance.tau);
  h = fold(h, instance.requests.num_cores());
  for (CoreId core = 0; core < instance.requests.num_cores(); ++core) {
    const RequestSequence& seq = instance.requests[core];
    h = fold(h, seq.size());
    for (const PageId page : seq) h = fold(h, page);
  }
  return h;
}

std::uint64_t fingerprint(const PifInstance& instance) {
  std::uint64_t h = fold(fingerprint(instance.base), instance.deadline);
  h = fold(h, instance.bounds.size());
  for (const Count bound : instance.bounds) h = fold(h, bound);
  return h;
}

std::vector<std::uint64_t> pack_u32(const std::uint32_t* data,
                                    std::size_t count) {
  std::vector<std::uint64_t> words(1 + (count + 1) / 2, 0);
  words[0] = count;
  for (std::size_t i = 0; i < count; ++i) {
    words[1 + i / 2] |= static_cast<std::uint64_t>(data[i]) << ((i & 1) * 32);
  }
  return words;
}

std::vector<std::uint64_t> pack_u32(const std::vector<std::uint32_t>& values) {
  return pack_u32(values.data(), values.size());
}

void unpack_u32(const std::vector<std::uint64_t>& words,
                std::vector<std::uint32_t>& out) {
  MCP_REQUIRE(!words.empty(), "unpack_u32: missing count word");
  const std::size_t count = words[0];
  MCP_REQUIRE(words.size() == 1 + (count + 1) / 2,
              "unpack_u32: word count disagrees with element count");
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint32_t>(words[1 + i / 2] >> ((i & 1) * 32));
  }
}

// ---------------------------------------------------------------------------
// Writer

Writer::Writer(std::uint32_t kind, std::uint64_t fingerprint) {
  words_.push_back(kMagic);
  words_.push_back(static_cast<std::uint64_t>(kVersion) << 32 | kind);
  words_.push_back(fingerprint);
}

void Writer::section(std::uint32_t tag, const std::uint64_t* words,
                     std::size_t count) {
  words_.push_back(tag);
  words_.push_back(count);
  words_.insert(words_.end(), words, words + count);
}

void Writer::write(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw_io(path, "open");
  std::uint64_t checksum = 0;
  for (const std::uint64_t word : words_) checksum = fold(checksum, word);
  bool ok = true;
  const auto write_all = [&](const void* data, std::size_t bytes) {
    const char* p = static_cast<const char*>(data);
    std::size_t done = 0;
    while (ok && done < bytes) {
      const ssize_t n = ::write(fd, p + done, bytes - done);
      if (n < 0) {
        ok = false;
        break;
      }
      done += static_cast<std::size_t>(n);
    }
  };
  write_all(words_.data(), words_.size() * sizeof(std::uint64_t));
  write_all(&checksum, sizeof(checksum));
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    ::unlink(tmp.c_str());
    throw_io(path, "write");
  }
  // The atomic step: a crash before this rename leaves the previous
  // checkpoint untouched; after it, the new one is complete.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io(path, "rename");
  }
}

// ---------------------------------------------------------------------------
// Reader

Reader::Reader(const std::string& path, std::uint32_t kind,
               std::uint64_t fingerprint)
    : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_io(path, "fstat");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  if (bytes % sizeof(std::uint64_t) != 0) {
    ::close(fd);
    throw_input(path, "size is not a whole number of words (truncated?)");
  }
  std::vector<std::uint64_t> words(bytes / sizeof(std::uint64_t));
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, reinterpret_cast<char*>(words.data()) + got,
                             bytes - got);
    if (n <= 0) {
      ::close(fd);
      throw_io(path, "read");
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);

  // header + checksum minimum
  if (words.size() < kHeaderWords + 1)
    throw_input(path, "file too short for a checkpoint header");
  if (words[0] != kMagic) throw_input(path, "bad magic (not a checkpoint)");
  const std::uint32_t version = static_cast<std::uint32_t>(words[1] >> 32);
  const std::uint32_t file_kind = static_cast<std::uint32_t>(words[1]);
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported version " << version << " (expected " << kVersion
       << ")";
    throw_input(path, os.str());
  }
  if (file_kind != kind) {
    std::ostringstream os;
    os << "solver kind mismatch: file has " << file_kind << ", resuming "
       << kind;
    throw_input(path, os.str());
  }

  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i + 1 < words.size(); ++i)
    checksum = fold(checksum, words[i]);
  if (checksum != words.back())
    throw_input(path, "checksum mismatch (corrupted or truncated)");

  if (words[2] != fingerprint)
    throw_input(path,
                "instance/options fingerprint mismatch: this checkpoint "
                "belongs to a different solve");

  std::size_t pos = kHeaderWords;
  const std::size_t end = words.size() - 1;  // checksum word excluded
  while (pos < end) {
    if (end - pos < 2) throw_input(path, "truncated section header");
    const std::uint64_t tag = words[pos];
    const std::uint64_t count = words[pos + 1];
    if (tag > 0xFFFFFFFFull) throw_input(path, "section tag out of range");
    if (count > end - pos - 2) throw_input(path, "truncated section body");
    if (has(static_cast<std::uint32_t>(tag)))
      throw_input(path, "duplicate section tag");
    const std::uint64_t* body = words.data() + pos + 2;
    sections_.emplace_back(
        static_cast<std::uint32_t>(tag),
        std::vector<std::uint64_t>(body, body + count));
    pos += 2 + static_cast<std::size_t>(count);
  }
}

bool Reader::has(std::uint32_t tag) const noexcept {
  for (const auto& [t, words] : sections_) {
    if (t == tag) return true;
  }
  return false;
}

const std::vector<std::uint64_t>& Reader::section(std::uint32_t tag) const {
  for (const auto& [t, words] : sections_) {
    if (t == tag) return words;
  }
  std::ostringstream os;
  os << "missing section " << tag;
  throw_input(path_, os.str());
}

void Reader::section_u32(std::uint32_t tag,
                         std::vector<std::uint32_t>& out) const {
  unpack_u32(section(tag), out);
}

}  // namespace mcp::checkpoint
