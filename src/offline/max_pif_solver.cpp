#include "offline/max_pif_solver.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "core/error.hpp"

namespace mcp {

namespace {

/// Bounds vector enforcing the instance bounds on `subset` members and
/// effectively nothing on everyone else.
std::vector<Count> relaxed_bounds(const PifInstance& instance,
                                  std::uint32_t subset) {
  std::vector<Count> bounds(instance.bounds.size());
  for (std::size_t j = 0; j < bounds.size(); ++j) {
    bounds[j] = ((subset >> j) & 1u)
                    ? instance.bounds[j]
                    : std::numeric_limits<Count>::max() / 2;
  }
  return bounds;
}

}  // namespace

MaxPifResult solve_max_pif(const PifInstance& instance,
                           const PifOptions& options) {
  instance.validate();
  const std::size_t p = instance.base.requests.num_cores();
  MCP_REQUIRE(p <= 20, "solve_max_pif: too many cores for subset search");

  MaxPifResult result;
  std::vector<std::uint32_t> infeasible;  // known-infeasible subsets

  // Subsets grouped by size, largest first; within a size, ascending.
  const std::uint32_t all = p == 32 ? ~0u : ((1u << p) - 1u);
  for (std::size_t size = p; size > 0; --size) {
    for (std::uint32_t subset = 1; subset <= all; ++subset) {
      if (std::popcount(subset) != static_cast<int>(size)) continue;
      // Monotonicity: if a sub-subset already failed, this one fails too.
      const bool doomed =
          std::any_of(infeasible.begin(), infeasible.end(),
                      [subset](std::uint32_t bad) {
                        return (subset & bad) == bad;
                      });
      if (doomed) continue;

      PifInstance relaxed = instance;
      relaxed.bounds = relaxed_bounds(instance, subset);
      ++result.subsets_tried;
      if (solve_pif(relaxed, options).feasible) {
        result.max_satisfied = size;
        result.witness.clear();
        for (CoreId j = 0; j < p; ++j) {
          if ((subset >> j) & 1u) result.witness.push_back(j);
        }
        return result;
      }
      infeasible.push_back(subset);
    }
  }
  // Even singletons failed: zero sequences can be kept within bounds.
  result.max_satisfied = 0;
  return result;
}

}  // namespace mcp
