#include "offline/makespan_solver.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/error.hpp"

namespace mcp {

namespace {

/// Completion time of a terminal state first reached at the start of step
/// `layer`: its last service step was layer-1, extended by any fetch still
/// in flight (fetch[j] = r means that fetch lands at layer-1+r).
Time terminal_makespan(const OfflineState& state, Time layer) {
  std::uint32_t residual = 0;
  for (std::uint32_t r : state.fetch) residual = std::max(residual, r);
  if (layer == 0) return residual;  // empty instance
  return layer - 1 + residual;
}

}  // namespace

MakespanResult solve_min_makespan(const OfflineInstance& instance,
                                  const MakespanOptions& options) {
  const TransitionSystem system(instance, options.victim_rule);

  using Layer = std::unordered_set<OfflineState, OfflineStateHash>;
  Layer layer;
  layer.insert(system.initial());

  MakespanResult result;
  Time best = kTimeNever;
  for (Time t = 0;; ++t) {
    // Harvest terminals; once layer start can no longer beat the incumbent,
    // stop.
    for (const OfflineState& state : layer) {
      if (system.is_terminal(state)) {
        best = std::min(best, terminal_makespan(state, t));
      }
    }
    if (best != kTimeNever && (t == 0 || t - 1 >= best)) break;

    Layer next;
    for (const OfflineState& state : layer) {
      if (system.is_terminal(state)) continue;  // done; nothing to expand
      ++result.states_expanded;
      system.expand(state, [&next](StepOutcome&& outcome) {
        next.insert(std::move(outcome.next));
      });
    }
    if (next.empty()) {
      // All states terminal: the harvest above already set `best`.
      MCP_REQUIRE(best != kTimeNever, "makespan search: dead end");
      break;
    }
    layer = std::move(next);
    result.peak_layer_width = std::max(result.peak_layer_width, layer.size());
    if (options.max_layer_width != 0 &&
        result.peak_layer_width > options.max_layer_width) {
      throw ModelError("solve_min_makespan: layer width limit exceeded");
    }
  }
  result.min_makespan = best;
  return result;
}

}  // namespace mcp
