#include "offline/replay.hpp"

#include "core/error.hpp"

namespace mcp {

void ReplayStrategy::attach(const SimConfig& config, std::size_t /*num_cores*/,
                            const RequestSet* /*requests*/) {
  cache_size_ = config.cache_size;
  next_ = 0;
  lru_.reset();
}

void ReplayStrategy::on_hit(const AccessContext& ctx) {
  // Shadow LRU stays current so the fallback (if any) is well-formed.
  if (lru_.contains(ctx.page)) lru_.on_hit(ctx.page, ctx);
}

void ReplayStrategy::on_fault(const AccessContext& ctx,
                              const CacheState& cache, bool needs_cell,
                              std::vector<PageId>& evictions) {
  if (!needs_cell) return;
  if (next_ < schedule_.size()) {
    const PageId victim = schedule_[next_++];
    if (victim == kInvalidPage) {
      MCP_REQUIRE(cache.occupied() < cache_size_,
                  "replay schedule skips an eviction but the cache is full");
    } else {
      if (lru_.contains(victim)) lru_.on_remove(victim);
      evictions.push_back(victim);
    }
  } else {
    MCP_REQUIRE(on_exhausted_ == OnExhausted::kFallbackLru,
                "replay schedule exhausted: more faults than entries");
    if (cache.occupied() == cache_size_) {
      const PageId victim = lru_.victim(
          ctx, [&cache](PageId page) { return cache.contains(page); });
      MCP_REQUIRE(victim != kInvalidPage,
                  "replay fallback: no evictable page");
      lru_.on_remove(victim);
      evictions.push_back(victim);
    }
  }
  if (lru_.contains(ctx.page)) lru_.on_remove(ctx.page);
  lru_.on_insert(ctx.page, ctx);
}

RunStats replay_schedule(const OfflineInstance& instance,
                         const std::vector<PageId>& schedule) {
  instance.validate();
  ReplayStrategy strategy(schedule);
  Simulator sim(instance.sim_config());
  return sim.run(instance.requests, strategy);
}

}  // namespace mcp
