#include "offline/pif_solver.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "offline/replay.hpp"

namespace mcp {

namespace {

using FaultVec = std::vector<std::uint32_t>;

/// true iff a[i] <= b[i] for all i.
bool dominates(const FaultVec& a, const FaultVec& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// One Pareto-frontier member of a state, with its provenance (provenance
/// fields stay empty unless a witness schedule was requested).
struct VecEntry {
  FaultVec faults;
  const OfflineState* parent_state = nullptr;
  std::uint32_t parent_vec = 0;
  std::vector<PageId> evictions;
};

/// Inserts `entry` unless dominated; removes entries it dominates.
bool pareto_insert(std::vector<VecEntry>& front, VecEntry&& entry) {
  for (const VecEntry& existing : front) {
    if (dominates(existing.faults, entry.faults)) return false;
  }
  std::erase_if(front, [&entry](const VecEntry& existing) {
    return dominates(entry.faults, existing.faults);
  });
  front.push_back(std::move(entry));
  return true;
}

using Layer =
    std::unordered_map<OfflineState, std::vector<VecEntry>, OfflineStateHash>;

std::size_t layer_width(const Layer& layer) {
  std::size_t width = 0;
  for (const auto& [state, entries] : layer) width += entries.size();
  return width;
}

/// Walks provenance back to layer 0 and flattens the per-step eviction
/// lists into the global fault-order schedule.
std::vector<PageId> reconstruct(const std::deque<Layer>& history,
                                std::size_t layer_index,
                                const OfflineState* state,
                                std::uint32_t vec_index) {
  std::vector<const std::vector<PageId>*> steps;
  while (layer_index > 0) {
    const auto it = history[layer_index].find(*state);
    MCP_ASSERT(it != history[layer_index].end());
    const VecEntry& entry = it->second[vec_index];
    steps.push_back(&entry.evictions);
    state = entry.parent_state;
    vec_index = entry.parent_vec;
    --layer_index;
  }
  std::reverse(steps.begin(), steps.end());
  std::vector<PageId> schedule;
  for (const auto* step : steps) {
    schedule.insert(schedule.end(), step->begin(), step->end());
  }
  return schedule;
}

}  // namespace

PifResult solve_pif(const PifInstance& instance, const PifOptions& options) {
  instance.validate();
  const TransitionSystem system(instance.base, options.victim_rule);
  const std::size_t p = system.num_cores();

  PifResult result;
  // history[t] = layer at the start of step t.  Without schedule building we
  // only ever keep the last two layers alive (the deque is pruned).
  std::deque<Layer> history;
  history.emplace_back();
  {
    VecEntry start;
    start.faults.assign(p, 0);
    history.back()[system.initial()].push_back(std::move(start));
  }

  for (Time t = 0; t < instance.deadline; ++t) {
    const Layer& layer = history.back();
    // Early success: a finished state's fault vector is frozen, and every
    // vector still alive satisfies the bounds by construction.
    for (const auto& [state, entries] : layer) {
      if (system.is_terminal(state) && !entries.empty()) {
        result.feasible = true;
        result.decided_at = t;
        if (options.build_schedule) {
          result.schedule = reconstruct(history, history.size() - 1, &state, 0);
        }
        return result;
      }
    }

    Layer next;
    for (const auto& [state, entries] : layer) {
      ++result.states_expanded;
      const OfflineState* state_ptr = &state;
      system.expand(state, [&](StepOutcome&& outcome) {
        for (std::uint32_t v = 0; v < entries.size(); ++v) {
          VecEntry advanced;
          advanced.faults = entries[v].faults;
          bool alive = true;
          for (std::size_t j = 0; j < p; ++j) {
            if ((outcome.faulted_cores >> j) & 1u) {
              if (++advanced.faults[j] > instance.bounds[j]) {
                alive = false;
                break;
              }
            }
          }
          if (!alive) continue;
          if (options.build_schedule) {
            advanced.parent_state = state_ptr;
            advanced.parent_vec = v;
            advanced.evictions = outcome.evictions;
          }
          pareto_insert(next[outcome.next], std::move(advanced));
        }
      });
    }
    history.push_back(std::move(next));
    if (!options.build_schedule && history.size() > 2) history.pop_front();

    result.peak_layer_width =
        std::max(result.peak_layer_width, layer_width(history.back()));
    if (options.max_layer_width != 0 &&
        result.peak_layer_width > options.max_layer_width) {
      throw ModelError("solve_pif: layer width limit exceeded");
    }
    if (history.back().empty()) {  // every branch blew a bound
      result.feasible = false;
      result.decided_at = t + 1;
      return result;
    }
  }

  result.feasible = !history.back().empty();
  result.decided_at = instance.deadline;
  if (result.feasible && options.build_schedule) {
    const auto& final_layer = history.back();
    const auto it = final_layer.begin();
    result.schedule =
        reconstruct(history, history.size() - 1, &it->first, 0);
  }
  return result;
}

bool verify_pif_witness(const PifInstance& instance,
                        const std::vector<PageId>& schedule) {
  instance.validate();
  ReplayStrategy strategy(schedule, ReplayStrategy::OnExhausted::kFallbackLru);
  Simulator sim(instance.base.sim_config());
  const RunStats stats = sim.run(instance.base.requests, strategy);
  return stats.within_bounds_at(instance.deadline, instance.bounds);
}

}  // namespace mcp
