#include "offline/pif_solver.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "core/thread_pool.hpp"
#include "offline/packed_space.hpp"
#include "offline/packed_state.hpp"
#include "offline/replay.hpp"

namespace mcp {

namespace {

// ---------------------------------------------------------------------------
// Reference engine: serial layered BFS over heap-backed OfflineState nodes
// with linear-scan Pareto fronts.  Retained as the differential oracle.
// ---------------------------------------------------------------------------

using FaultVec = std::vector<std::uint32_t>;

/// true iff a[i] <= b[i] for all i.
bool dominates(const FaultVec& a, const FaultVec& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// One Pareto-frontier member of a state, with its provenance (provenance
/// fields stay empty unless a witness schedule was requested).
struct VecEntry {
  FaultVec faults;
  const OfflineState* parent_state = nullptr;
  std::uint32_t parent_vec = 0;
  std::vector<PageId> evictions;
};

/// Inserts `entry` unless dominated; removes entries it dominates.
bool pareto_insert(std::vector<VecEntry>& front, VecEntry&& entry) {
  for (const VecEntry& existing : front) {
    if (dominates(existing.faults, entry.faults)) return false;
  }
  std::erase_if(front, [&entry](const VecEntry& existing) {
    return dominates(entry.faults, existing.faults);
  });
  front.push_back(std::move(entry));
  return true;
}

using Layer =
    std::unordered_map<OfflineState, std::vector<VecEntry>, OfflineStateHash>;

std::size_t layer_width(const Layer& layer) {
  std::size_t width = 0;
  for (const auto& [state, entries] : layer) width += entries.size();
  return width;
}

/// Walks provenance back to layer 0 and flattens the per-step eviction
/// lists into the global fault-order schedule.
std::vector<PageId> reconstruct(const std::deque<Layer>& history,
                                std::size_t layer_index,
                                const OfflineState* state,
                                std::uint32_t vec_index) {
  std::vector<const std::vector<PageId>*> steps;
  while (layer_index > 0) {
    const auto it = history[layer_index].find(*state);
    MCP_ASSERT(it != history[layer_index].end());
    const VecEntry& entry = it->second[vec_index];
    steps.push_back(&entry.evictions);
    state = entry.parent_state;
    vec_index = entry.parent_vec;
    --layer_index;
  }
  std::reverse(steps.begin(), steps.end());
  std::vector<PageId> schedule;
  for (const auto* step : steps) {
    schedule.insert(schedule.end(), step->begin(), step->end());
  }
  return schedule;
}

PifResult solve_pif_reference(const PifInstance& instance,
                              const PifOptions& options) {
  const TransitionSystem system(instance.base, options.victim_rule);
  const std::size_t p = system.num_cores();

  PifResult result;
  // history[t] = layer at the start of step t.  Without schedule building we
  // only ever keep the last two layers alive (the deque is pruned).
  std::deque<Layer> history;
  history.emplace_back();
  {
    VecEntry start;
    start.faults.assign(p, 0);
    history.back()[system.initial()].push_back(std::move(start));
  }

  for (Time t = 0; t < instance.deadline; ++t) {
    const Layer& layer = history.back();
    // Early success: a finished state's fault vector is frozen, and every
    // vector still alive satisfies the bounds by construction.
    for (const auto& [state, entries] : layer) {
      if (system.is_terminal(state) && !entries.empty()) {
        result.feasible = true;
        result.decided_at = t;
        if (options.build_schedule) {
          result.schedule = reconstruct(history, history.size() - 1, &state, 0);
        }
        return result;
      }
    }

    Layer next;
    for (const auto& [state, entries] : layer) {
      ++result.states_expanded;
      const OfflineState* state_ptr = &state;
      system.expand(state, [&](StepOutcome&& outcome) {
        for (std::uint32_t v = 0; v < entries.size(); ++v) {
          VecEntry advanced;
          advanced.faults = entries[v].faults;
          bool alive = true;
          for (std::size_t j = 0; j < p; ++j) {
            if ((outcome.faulted_cores >> j) & 1u) {
              if (++advanced.faults[j] > instance.bounds[j]) {
                alive = false;
                break;
              }
            }
          }
          if (!alive) continue;
          if (options.build_schedule) {
            advanced.parent_state = state_ptr;
            advanced.parent_vec = v;
            advanced.evictions = outcome.evictions;
          }
          pareto_insert(next[outcome.next], std::move(advanced));
        }
      });
    }
    history.push_back(std::move(next));
    if (!options.build_schedule && history.size() > 2) history.pop_front();

    result.peak_layer_width =
        std::max(result.peak_layer_width, layer_width(history.back()));
    if (options.max_layer_width != 0 &&
        result.peak_layer_width > options.max_layer_width) {
      throw ModelError("solve_pif: layer width limit exceeded");
    }
    if (history.back().empty()) {  // every branch blew a bound
      result.feasible = false;
      result.decided_at = t + 1;
      return result;
    }
  }

  result.feasible = !history.back().empty();
  result.decided_at = instance.deadline;
  if (result.feasible && options.build_schedule) {
    const auto& final_layer = history.back();
    const auto it = final_layer.begin();
    result.schedule =
        reconstruct(history, history.size() - 1, &it->first, 0);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Packed engine: layered DP over interned packed states, expanded
// layer-parallel on mcp::ThreadPool.
//
// Determinism contract (bit-identical results at any worker count): each
// layer's states — sorted ascending by interned id — are partitioned into
// fixed-size chunks by index; every chunk records its (successor, advanced
// fault vector, provenance) emissions in the exact order the serial loop
// would produce them; chunks are then merged into the next layer's Pareto
// fronts serially, in chunk-index order.  Worker scheduling only decides
// *when* a chunk's buffer is filled, never what it contains or when it is
// merged.  Pareto front contents are insertion-order independent anyway
// (the front is the set of minimal vectors seen), so the merge yields the
// same fronts the reference engine computes.
// ---------------------------------------------------------------------------

/// States per expansion chunk.  Fixed — it shapes the deterministic merge
/// order, so it must not depend on the worker count.
constexpr std::size_t kChunkStates = 4;

/// Entry provenance inside a packed layer (schedule mode).
struct Prov {
  std::uint32_t parent_state = 0;  ///< state index in the previous layer
  std::uint32_t parent_entry = 0;  ///< entry index in that state's front
  std::uint32_t evict_off = 0;     ///< span into the layer's evict_pool
  std::uint32_t evict_len = 0;
};

/// Pareto frontier of one state: entries sorted lexicographically by fault
/// vector (flat, p words per entry) with parallel provenance.  The sorted
/// order carries the pruning structure: an entry can only be dominated by
/// lexicographically smaller entries and can only dominate lexicographically
/// larger ones, so both scans cover half the front — and for p == 2 the
/// staircase invariant (first coordinate strictly increasing, second
/// strictly decreasing) collapses them to a binary search plus one
/// contiguous erase.
struct PackedFront {
  std::vector<std::uint32_t> faults;  ///< size() * p fault counters
  std::vector<Prov> prov;

  [[nodiscard]] std::size_t size() const noexcept { return prov.size(); }
  [[nodiscard]] const std::uint32_t* entry(std::size_t p_,
                                           std::size_t e) const noexcept {
    return faults.data() + e * p_;
  }
};

/// true iff a[i] <= b[i] for all i in [0, p).
bool dominates_flat(const std::uint32_t* a, const std::uint32_t* b,
                    std::size_t p) noexcept {
  for (std::size_t i = 0; i < p; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// Inserts `fv` unless dominated; removes entries it dominates; keeps the
/// front sorted.  Returns false if rejected.
bool pareto_insert_packed(PackedFront& front, std::size_t p,
                          const std::uint32_t* fv, const Prov& prov) {
  const std::size_t n = front.size();
  // Binary search: first entry lexicographically greater than fv.
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const std::uint32_t* e = front.entry(p, mid);
    if (std::lexicographical_compare(fv, fv + p, e, e + p)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t pos = lo;  // entries [0,pos) are lex <= fv (incl. equal)

  // Dominated check: only lexicographically smaller-or-equal entries can
  // dominate fv (dominance implies lex <=); an equal vector also lands in
  // [0,pos) and rejects the duplicate.
  if (p == 2) {
    // Staircase: among [0,pos) the second coordinate is minimal at pos-1.
    if (pos > 0 && front.entry(p, pos - 1)[1] <= fv[1]) return false;
  } else {
    for (std::size_t e = 0; e < pos; ++e) {
      if (dominates_flat(front.entry(p, e), fv, p)) return false;
    }
  }

  // Removal: fv can only dominate lexicographically larger entries.
  std::size_t first_removed = pos;
  std::size_t removed = 0;
  if (p == 2) {
    // Dominated entries form a contiguous run at pos (second coordinate is
    // descending and every entry past pos has first coordinate >= fv[0]).
    while (first_removed + removed < n &&
           front.entry(p, first_removed + removed)[1] >= fv[1]) {
      ++removed;
    }
  } else {
    // Compact the survivors of [pos, n) in place.
    std::size_t write = pos;
    for (std::size_t e = pos; e < n; ++e) {
      if (dominates_flat(fv, front.entry(p, e), p)) continue;
      if (write != e) {
        std::copy_n(front.entry(p, e), p, front.faults.data() + write * p);
        front.prov[write] = front.prov[e];
      }
      ++write;
    }
    removed = n - write;
    first_removed = write;  // tail [write, n) is now garbage
  }
  const auto off = [](std::size_t i) {
    return static_cast<std::ptrdiff_t>(i);
  };
  if (removed > 0) {
    front.faults.erase(front.faults.begin() + off(first_removed * p),
                       front.faults.begin() + off((first_removed + removed) * p));
    front.prov.erase(front.prov.begin() + off(first_removed),
                     front.prov.begin() + off(first_removed + removed));
  }
  front.faults.insert(front.faults.begin() + off(pos * p), fv, fv + p);
  front.prov.insert(front.prov.begin() + off(pos), prov);
  return true;
}

/// One layer of the packed DP: states sorted ascending by interned id.
struct PackedLayer {
  std::vector<std::uint32_t> ids;
  std::vector<PackedFront> fronts;  ///< parallel to ids
  std::vector<PageId> evict_pool;   ///< flat eviction storage (schedule mode)

  [[nodiscard]] std::size_t width() const noexcept {
    std::size_t w = 0;
    for (const PackedFront& f : fronts) w += f.size();
    return w;
  }
};

/// Emissions of one expansion chunk, grouped per outcome (the successor is
/// interned once per outcome at merge time), in deterministic serial order.
/// Only outcomes with at least one bound-surviving entry are recorded.
struct ChunkEmits {
  // Per surviving outcome.
  std::vector<std::uint64_t> words;          ///< stride words each
  std::vector<std::uint32_t> out_state;      ///< source state index
  std::vector<std::uint32_t> out_count;      ///< surviving emissions
  std::vector<std::uint32_t> out_evict_off;  ///< span into evicts
  std::vector<std::uint32_t> out_evict_len;
  std::vector<PageId> evicts;
  // Per emission, concatenated across outcomes.
  std::vector<std::uint32_t> faults;         ///< p per emission
  std::vector<std::uint32_t> src_entry;

  void clear() {
    words.clear();
    out_state.clear();
    out_count.clear();
    out_evict_off.clear();
    out_evict_len.clear();
    evicts.clear();
    faults.clear();
    src_entry.clear();
  }
};

std::vector<PageId> reconstruct_packed(const std::vector<PackedLayer>& history,
                                       std::size_t layer_index,
                                       std::uint32_t state_index,
                                       std::uint32_t entry_index) {
  std::vector<std::pair<const PageId*, std::uint32_t>> steps;
  while (layer_index > 0) {
    const PackedLayer& layer = history[layer_index];
    const Prov& prov = layer.fronts[state_index].prov[entry_index];
    steps.emplace_back(layer.evict_pool.data() + prov.evict_off,
                       prov.evict_len);
    state_index = prov.parent_state;
    entry_index = prov.parent_entry;
    --layer_index;
  }
  std::reverse(steps.begin(), steps.end());
  std::vector<PageId> schedule;
  for (const auto& [first, len] : steps) {
    schedule.insert(schedule.end(), first, first + len);
  }
  return schedule;
}

PifResult solve_pif_packed(const PifInstance& instance,
                           const PifOptions& options) {
  const PackedTransitionSystem system(instance.base, options.victim_rule);
  const std::size_t p = system.num_cores();
  const std::size_t stride = system.state_words();
  const bool schedule = options.build_schedule;

  StateInterner interner(stride);
  interner.reserve(1024);
  {
    std::vector<std::uint64_t> start(stride);
    system.initial(start.data());
    interner.intern(start.data());  // id 0
  }

  // history.back() is the current layer; earlier layers are retained only in
  // schedule mode (parent indices need them for reconstruction).
  std::vector<PackedLayer> history;
  history.emplace_back();
  history.back().ids.push_back(0);
  history.back().fronts.emplace_back();
  history.back().fronts.back().faults.assign(p, 0);
  history.back().fronts.back().prov.push_back(Prov{});

  // Interned id -> state index in the layer being merged, stamped per layer
  // so the map never needs clearing (ids are dense).
  std::vector<std::uint32_t> id_stamp;
  std::vector<std::uint32_t> id_index;
  std::uint32_t stamp = 0;

  std::vector<ChunkEmits> chunks;
  std::vector<PackedTransitionSystem::StepScratch> scratches;
  PackedTransitionSystem::StepScratch serial_scratch;
  std::vector<std::uint32_t> advanced(p);

  // Retired fronts and layer shells, recycled so the steady-state loop stops
  // allocating (only meaningful without schedule retention).
  std::vector<PackedFront> spare_fronts;
  PackedLayer spare_layer;
  PackedLayer sort_buf;
  std::vector<std::uint32_t> order;

  PifResult result;
  for (Time t = 0; t < instance.deadline; ++t) {
    const PackedLayer& layer = history.back();
    // Early success: a finished state's fault vector is frozen, and every
    // vector still alive satisfies the bounds by construction.  Scanning in
    // ascending id order makes the witness choice worker-count independent.
    for (std::size_t s = 0; s < layer.ids.size(); ++s) {
      if (system.is_terminal(interner.state(layer.ids[s])) &&
          layer.fronts[s].size() > 0) {
        result.feasible = true;
        result.decided_at = t;
        if (schedule) {
          result.schedule = reconstruct_packed(
              history, history.size() - 1, static_cast<std::uint32_t>(s), 0);
        }
        return result;
      }
    }

    // Expansion: fixed-size chunks of the (id-sorted) state list.  Both
    // paths below walk (state, outcome, surviving entry) in the same order
    // and intern each successor on its first surviving emission, so they
    // build identical layers; the parallel path merely buffers per chunk.
    const std::size_t num_states = layer.ids.size();
    const std::size_t num_chunks =
        (num_states + kChunkStates - 1) / kChunkStates;
    PackedLayer next = std::move(spare_layer);
    next.ids.clear();
    next.evict_pool.clear();
    for (PackedFront& front : next.fronts) {
      spare_fronts.push_back(std::move(front));
    }
    next.fronts.clear();
    next.ids.reserve(num_states);
    next.fronts.reserve(num_states);
    ++stamp;

    const auto insert_emission = [&](std::uint32_t nid,
                                     const std::uint32_t* fv,
                                     std::uint32_t src_state,
                                     std::uint32_t src_entry,
                                     const PageId* evictions,
                                     std::uint32_t num_evictions) {
      if (nid >= id_stamp.size()) {
        // Headroom so the maps don't resize on every freshly interned id.
        id_stamp.resize(interner.size() + 256, 0);
        id_index.resize(interner.size() + 256, 0);
      }
      std::uint32_t idx;
      if (id_stamp[nid] != stamp) {
        id_stamp[nid] = stamp;
        idx = static_cast<std::uint32_t>(next.ids.size());
        id_index[nid] = idx;
        next.ids.push_back(nid);
        if (spare_fronts.empty()) {
          next.fronts.emplace_back();
        } else {
          next.fronts.push_back(std::move(spare_fronts.back()));
          spare_fronts.pop_back();
          next.fronts.back().faults.clear();
          next.fronts.back().prov.clear();
        }
      } else {
        idx = id_index[nid];
      }
      Prov prov;
      prov.parent_state = src_state;
      prov.parent_entry = src_entry;
      if (schedule) {
        prov.evict_off = static_cast<std::uint32_t>(next.evict_pool.size());
        prov.evict_len = num_evictions;
      }
      if (pareto_insert_packed(next.fronts[idx], p, fv, prov) && schedule &&
          num_evictions > 0) {
        next.evict_pool.insert(next.evict_pool.end(), evictions,
                               evictions + num_evictions);
      }
    };

    // Pool dispatch pays off only with real workers and more than one chunk.
    const bool parallel = options.workers != 1 && num_chunks > 1 &&
                          ThreadPool::global().num_workers() > 1;
    if (!parallel) {
      for (std::size_t s = 0; s < num_states; ++s) {
        const PackedFront& front = layer.fronts[s];
        system.expand(interner.state(layer.ids[s]), serial_scratch,
                      [&](const PackedOutcome& outcome) {
          std::uint32_t nid = StateInterner::kNoState;
          for (std::size_t v = 0; v < front.size(); ++v) {
            std::copy_n(front.entry(p, v), p, advanced.begin());
            bool alive = true;
            for (std::size_t j = 0; j < p; ++j) {
              if ((outcome.faulted_cores >> j) & 1u) {
                if (++advanced[j] > instance.bounds[j]) {
                  alive = false;
                  break;
                }
              }
            }
            if (!alive) continue;
            if (nid == StateInterner::kNoState) {
              nid = interner.intern(outcome.next).first;
            }
            insert_emission(
                nid, advanced.data(), static_cast<std::uint32_t>(s),
                static_cast<std::uint32_t>(v), outcome.evictions.data(),
                static_cast<std::uint32_t>(outcome.evictions.size()));
          }
        });
      }
    } else {
      chunks.resize(num_chunks);
      scratches.resize(num_chunks);
      const auto expand_chunk = [&](std::size_t c) {
        ChunkEmits& out = chunks[c];
        out.clear();
        PackedTransitionSystem::StepScratch& scratch = scratches[c];
        std::vector<std::uint32_t> adv(p);
        const std::size_t begin = c * kChunkStates;
        const std::size_t end = std::min(num_states, begin + kChunkStates);
        for (std::size_t s = begin; s < end; ++s) {
          const PackedFront& front = layer.fronts[s];
          system.expand(interner.state(layer.ids[s]), scratch,
                        [&](const PackedOutcome& outcome) {
            std::uint32_t count = 0;
            for (std::size_t v = 0; v < front.size(); ++v) {
              std::copy_n(front.entry(p, v), p, adv.begin());
              bool alive = true;
              for (std::size_t j = 0; j < p; ++j) {
                if ((outcome.faulted_cores >> j) & 1u) {
                  if (++adv[j] > instance.bounds[j]) {
                    alive = false;
                    break;
                  }
                }
              }
              if (!alive) continue;
              out.faults.insert(out.faults.end(), adv.begin(), adv.end());
              out.src_entry.push_back(static_cast<std::uint32_t>(v));
              ++count;
            }
            if (count == 0) return;
            out.words.insert(out.words.end(), outcome.next,
                             outcome.next + stride);
            out.out_state.push_back(static_cast<std::uint32_t>(s));
            out.out_count.push_back(count);
            if (schedule) {
              out.out_evict_off.push_back(
                  static_cast<std::uint32_t>(out.evicts.size()));
              out.out_evict_len.push_back(
                  static_cast<std::uint32_t>(outcome.evictions.size()));
              out.evicts.insert(out.evicts.end(), outcome.evictions.begin(),
                                outcome.evictions.end());
            }
          });
        }
      };
      ThreadPool::global().run_indexed(num_chunks, expand_chunk,
                                       options.workers);

      // Merge serially, in chunk order — the exact order the serial path
      // above would use.
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const ChunkEmits& out = chunks[c];
        std::size_t cursor = 0;
        for (std::size_t o = 0; o < out.out_state.size(); ++o) {
          const std::uint32_t nid =
              interner.intern(out.words.data() + o * stride).first;
          const std::uint32_t ev_len = schedule ? out.out_evict_len[o] : 0;
          const PageId* ev =
              ev_len > 0 ? out.evicts.data() + out.out_evict_off[o] : nullptr;
          for (std::uint32_t e = 0; e < out.out_count[o]; ++e, ++cursor) {
            insert_emission(nid, out.faults.data() + cursor * p,
                            out.out_state[o], out.src_entry[cursor], ev,
                            ev_len);
          }
        }
      }
    }
    result.states_expanded += num_states;

    // Sort the merged layer by id so the next round's chunking, terminal
    // scan, and witness choice are canonical.  `sort_buf` ping-pongs with
    // `next`'s buffers across layers, so the rebuild allocates nothing in
    // steady state (and is skipped entirely when the merge order happens to
    // be id-sorted already).
    if (!std::is_sorted(next.ids.begin(), next.ids.end())) {
      order.resize(next.ids.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&next](std::uint32_t a, std::uint32_t b) {
                  return next.ids[a] < next.ids[b];
                });
      sort_buf.ids.clear();
      sort_buf.fronts.clear();
      sort_buf.ids.reserve(next.ids.size());
      sort_buf.fronts.reserve(next.fronts.size());
      sort_buf.evict_pool = std::move(next.evict_pool);
      for (std::uint32_t i : order) {
        sort_buf.ids.push_back(next.ids[i]);
        sort_buf.fronts.push_back(std::move(next.fronts[i]));
      }
      std::swap(next, sort_buf);
    }

    if (!schedule) {
      spare_layer = std::move(history.back());
      for (PackedFront& front : spare_layer.fronts) {
        spare_fronts.push_back(std::move(front));
      }
      spare_layer.fronts.clear();
      history.clear();
    }
    history.push_back(std::move(next));

    result.peak_layer_width =
        std::max(result.peak_layer_width, history.back().width());
    if (options.max_layer_width != 0 &&
        result.peak_layer_width > options.max_layer_width) {
      throw ModelError("solve_pif: layer width limit exceeded");
    }
    if (history.back().ids.empty()) {  // every branch blew a bound
      result.feasible = false;
      result.decided_at = t + 1;
      return result;
    }
  }

  result.feasible = !history.back().ids.empty();
  result.decided_at = instance.deadline;
  if (result.feasible && schedule) {
    result.schedule = reconstruct_packed(history, history.size() - 1, 0, 0);
  }
  return result;
}

}  // namespace

PifResult solve_pif(const PifInstance& instance, const PifOptions& options) {
  instance.validate();
  if (options.engine == OfflineEngine::kPacked &&
      PackedTransitionSystem::supports(instance.base)) {
    return solve_pif_packed(instance, options);
  }
  return solve_pif_reference(instance, options);
}

bool verify_pif_witness(const PifInstance& instance,
                        const std::vector<PageId>& schedule) {
  instance.validate();
  ReplayStrategy strategy(schedule, ReplayStrategy::OnExhausted::kFallbackLru);
  Simulator sim(instance.base.sim_config());
  const RunStats stats = sim.run(instance.base.requests, strategy);
  return stats.within_bounds_at(instance.deadline, instance.bounds);
}

}  // namespace mcp
