#include "offline/pif_solver.hpp"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "core/sentry.hpp"
#include "core/simulator.hpp"
#include "core/thread_pool.hpp"
#include "offline/packed_space.hpp"
#include "offline/packed_state.hpp"
#include "offline/pareto_front.hpp"
#include "offline/replay.hpp"

namespace mcp {

namespace {

// ---------------------------------------------------------------------------
// Reference engine: serial layered BFS over heap-backed OfflineState nodes
// with linear-scan Pareto fronts.  Retained as the differential oracle.
// ---------------------------------------------------------------------------

using FaultVec = std::vector<std::uint32_t>;

/// true iff a[i] <= b[i] for all i.
bool dominates(const FaultVec& a, const FaultVec& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// One Pareto-frontier member of a state, with its provenance (provenance
/// fields stay empty unless a witness schedule was requested).
struct VecEntry {
  FaultVec faults;
  const OfflineState* parent_state = nullptr;
  std::uint32_t parent_vec = 0;
  std::vector<PageId> evictions;
};

/// Inserts `entry` unless dominated; removes entries it dominates.
bool pareto_insert(std::vector<VecEntry>& front, VecEntry&& entry) {
  for (const VecEntry& existing : front) {
    if (dominates(existing.faults, entry.faults)) return false;
  }
  std::erase_if(front, [&entry](const VecEntry& existing) {
    return dominates(entry.faults, existing.faults);
  });
  front.push_back(std::move(entry));
  return true;
}

using Layer =
    std::unordered_map<OfflineState, std::vector<VecEntry>, OfflineStateHash>;

std::size_t layer_width(const Layer& layer) {
  std::size_t width = 0;
  for (const auto& [state, entries] : layer) width += entries.size();
  return width;
}

/// Walks provenance back to layer 0 and flattens the per-step eviction
/// lists into the global fault-order schedule.
std::vector<PageId> reconstruct(const std::deque<Layer>& history,
                                std::size_t layer_index,
                                const OfflineState* state,
                                std::uint32_t vec_index) {
  std::vector<const std::vector<PageId>*> steps;
  while (layer_index > 0) {
    const auto it = history[layer_index].find(*state);
    MCP_ASSERT(it != history[layer_index].end());
    const VecEntry& entry = it->second[vec_index];
    steps.push_back(&entry.evictions);
    state = entry.parent_state;
    vec_index = entry.parent_vec;
    --layer_index;
  }
  std::reverse(steps.begin(), steps.end());
  std::vector<PageId> schedule;
  for (const auto* step : steps) {
    schedule.insert(schedule.end(), step->begin(), step->end());
  }
  return schedule;
}

PifResult solve_pif_reference(const PifInstance& instance,
                              const PifOptions& options) {
  const TransitionSystem system(instance.base, options.victim_rule);
  const std::size_t p = system.num_cores();

  PifResult result;
  // history[t] = layer at the start of step t.  Without schedule building we
  // only ever keep the last two layers alive (the deque is pruned).
  std::deque<Layer> history;
  history.emplace_back();
  {
    VecEntry start;
    start.faults.assign(p, 0);
    history.back()[system.initial()].push_back(std::move(start));
  }

  for (Time t = 0; t < instance.deadline; ++t) {
    const Layer& layer = history.back();
    // Early success: a finished state's fault vector is frozen, and every
    // vector still alive satisfies the bounds by construction.
    for (const auto& [state, entries] : layer) {
      if (system.is_terminal(state) && !entries.empty()) {
        result.feasible = true;
        result.decided_at = t;
        if (options.build_schedule) {
          result.schedule = reconstruct(history, history.size() - 1, &state, 0);
        }
        return result;
      }
    }

    Layer next;
    for (const auto& [state, entries] : layer) {
      ++result.states_expanded;
      const OfflineState* state_ptr = &state;
      system.expand(state, [&](StepOutcome&& outcome) {
        for (std::uint32_t v = 0; v < entries.size(); ++v) {
          VecEntry advanced;
          advanced.faults = entries[v].faults;
          bool alive = true;
          for (std::size_t j = 0; j < p; ++j) {
            if ((outcome.faulted_cores >> j) & 1u) {
              if (++advanced.faults[j] > instance.bounds[j]) {
                alive = false;
                break;
              }
            }
          }
          if (!alive) continue;
          if (options.build_schedule) {
            advanced.parent_state = state_ptr;
            advanced.parent_vec = v;
            advanced.evictions = outcome.evictions;
          }
          pareto_insert(next[outcome.next], std::move(advanced));
        }
      });
    }
    history.push_back(std::move(next));
    if (!options.build_schedule && history.size() > 2) history.pop_front();

    result.peak_layer_width =
        std::max(result.peak_layer_width, layer_width(history.back()));
    if (options.max_layer_width != 0 &&
        result.peak_layer_width > options.max_layer_width) {
      throw ModelError("solve_pif: layer width limit exceeded");
    }
    if (history.back().empty()) {  // every branch blew a bound
      result.feasible = false;
      result.decided_at = t + 1;
      return result;
    }
  }

  result.feasible = !history.back().empty();
  result.decided_at = instance.deadline;
  if (result.feasible && options.build_schedule) {
    const auto& final_layer = history.back();
    const auto it = final_layer.begin();
    result.schedule =
        reconstruct(history, history.size() - 1, &it->first, 0);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Packed engine: layered DP over interned packed states, expanded
// layer-parallel on mcp::ThreadPool.
//
// Determinism contract (bit-identical results at any worker count): each
// layer's states — sorted ascending by interned id — are partitioned into
// fixed-size chunks by index; every chunk records its (successor, advanced
// fault vector, provenance) emissions in the exact order the serial loop
// would produce them; chunks are then merged into the next layer's Pareto
// fronts serially, in chunk-index order.  Worker scheduling only decides
// *when* a chunk's buffer is filled, never what it contains or when it is
// merged.  Pareto front contents are insertion-order independent anyway
// (the front is the set of minimal vectors seen), so the merge yields the
// same fronts the reference engine computes.
// ---------------------------------------------------------------------------

/// States per expansion chunk.  Fixed — it shapes the deterministic merge
/// order, so it must not depend on the worker count.
constexpr std::size_t kChunkStates = 4;

// ParetoProv / PackedFront / pareto_insert_packed / validate_front live in
// offline/pareto_front.hpp (extracted so test_sentry.cpp can corrupt and
// validate fronts directly).

/// One layer of the packed DP: states sorted ascending by interned id.
struct PackedLayer {
  std::vector<std::uint32_t> ids;
  std::vector<PackedFront> fronts;  ///< parallel to ids
  std::vector<PageId> evict_pool;   ///< flat eviction storage (schedule mode)

  [[nodiscard]] std::size_t width() const noexcept {
    std::size_t w = 0;
    for (const PackedFront& f : fronts) w += f.size();
    return w;
  }
};

/// Emissions of one expansion chunk, grouped per outcome (the successor is
/// interned once per outcome at merge time), in deterministic serial order.
/// Only outcomes with at least one bound-surviving entry are recorded.
struct ChunkEmits {
  // Per surviving outcome.
  std::vector<std::uint64_t> words;          ///< stride words each
  std::vector<std::uint32_t> out_state;      ///< source state index
  std::vector<std::uint32_t> out_count;      ///< surviving emissions
  std::vector<std::uint32_t> out_evict_off;  ///< span into evicts
  std::vector<std::uint32_t> out_evict_len;
  std::vector<PageId> evicts;
  // Per emission, concatenated across outcomes.
  std::vector<std::uint32_t> faults;         ///< p per emission
  std::vector<std::uint32_t> src_entry;
  /// Advanced-fault-vector scratch (p words), persistent across layers so
  /// the expansion loop stays allocation-free — excluded from clear().
  std::vector<std::uint32_t> adv;

  void clear() {
    words.clear();
    out_state.clear();
    out_count.clear();
    out_evict_off.clear();
    out_evict_len.clear();
    evicts.clear();
    faults.clear();
    src_entry.clear();
  }
};

/// Serializes the provenance a finished layer contributes to witness
/// reconstruction — prov tuples per (state, entry) plus the eviction pool;
/// ids and fault vectors are never needed again once the layer is settled.
/// Layout (u32, then pack_u32): [num_states, per state: entry count then 4
/// prov words per entry, pool length, pool pages].
std::vector<std::uint64_t> serialize_layer_prov(const PackedLayer& layer) {
  std::vector<std::uint32_t> flat;
  flat.push_back(static_cast<std::uint32_t>(layer.ids.size()));
  for (const PackedFront& front : layer.fronts) {
    flat.push_back(static_cast<std::uint32_t>(front.prov.size()));
    for (const ParetoProv& prov : front.prov) {
      flat.push_back(prov.parent_state);
      flat.push_back(prov.parent_entry);
      flat.push_back(prov.evict_off);
      flat.push_back(prov.evict_len);
    }
  }
  flat.push_back(static_cast<std::uint32_t>(layer.evict_pool.size()));
  flat.insert(flat.end(), layer.evict_pool.begin(), layer.evict_pool.end());
  return checkpoint::pack_u32(flat);
}

/// Walks provenance back through the layer log (record t = layer t's
/// serialize_layer_prov words) and flattens the per-step eviction lists
/// into the global fault-order schedule.
std::vector<PageId> reconstruct_logged(const RecordLog& past,
                                       std::size_t layer_index,
                                       std::uint32_t state_index,
                                       std::uint32_t entry_index) {
  std::vector<std::vector<PageId>> steps;
  std::vector<std::uint64_t> words;
  std::vector<std::uint32_t> flat;
  while (layer_index > 0) {
    past.read(layer_index, words);
    checkpoint::unpack_u32(words, flat);
    // Walk the variable-length state records up to state_index.
    std::size_t pos = 0;
    const std::uint32_t num_states = flat[pos++];
    MCP_ASSERT_MSG(state_index < num_states,
                   "pif witness: parent state out of range");
    for (std::uint32_t s = 0; s < state_index; ++s) {
      pos += 1 + static_cast<std::size_t>(flat[pos]) * 4;
    }
    const std::uint32_t entries = flat[pos++];
    MCP_ASSERT_MSG(entry_index < entries,
                   "pif witness: parent entry out of range");
    pos += static_cast<std::size_t>(entry_index) * 4;
    const std::uint32_t parent_state = flat[pos];
    const std::uint32_t parent_entry = flat[pos + 1];
    const std::uint32_t evict_off = flat[pos + 2];
    const std::uint32_t evict_len = flat[pos + 3];
    // The pool sits after the last state record; its length word precedes
    // it.  Find it by walking the remaining states.
    std::size_t tail = 0;
    {
      std::size_t scan = 1;
      for (std::uint32_t s = 0; s < num_states; ++s) {
        scan += 1 + static_cast<std::size_t>(flat[scan]) * 4;
      }
      tail = scan + 1;  // first pool page; flat[scan] is the pool length
      MCP_ASSERT_MSG(static_cast<std::size_t>(evict_off) + evict_len <=
                         flat[scan],
                     "pif witness: eviction span out of range");
    }
    steps.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(tail + evict_off),
                       flat.begin() + static_cast<std::ptrdiff_t>(tail + evict_off + evict_len));
    state_index = parent_state;
    entry_index = parent_entry;
    --layer_index;
  }
  std::reverse(steps.begin(), steps.end());
  std::vector<PageId> schedule;
  for (const std::vector<PageId>& step : steps) {
    schedule.insert(schedule.end(), step.begin(), step.end());
  }
  return schedule;
}

/// Fingerprint binding a checkpoint to (instance, trajectory-affecting
/// options); workers/storage/sentry knobs are excluded — they do not change
/// any solve result.
std::uint64_t pif_fingerprint(const PifInstance& instance,
                              const PifOptions& options) {
  std::uint64_t h = checkpoint::fingerprint(instance);
  h = checkpoint::fold(h, static_cast<std::uint64_t>(options.victim_rule));
  h = checkpoint::fold(h, options.build_schedule ? 1 : 0);
  h = checkpoint::fold(h, options.max_layer_width);
  return checkpoint::fold(h, checkpoint::kKindPif);
}

// Checkpoint section tags (PIF).
constexpr std::uint32_t kSecScalars = 1;
constexpr std::uint32_t kSecArena = 2;
constexpr std::uint32_t kSecHashes = 3;
constexpr std::uint32_t kSecLayerIds = 10;
constexpr std::uint32_t kSecLayerSizes = 11;
constexpr std::uint32_t kSecLayerFaults = 12;
constexpr std::uint32_t kSecLayerProv = 13;
constexpr std::uint32_t kSecLayerEvicts = 14;
constexpr std::uint32_t kSecPastIndex = 15;
constexpr std::uint32_t kSecPastWords = 16;

[[noreturn]] void throw_width_limit(const PifResult& result,
                                    const StateInterner& interner) {
  std::ostringstream os;
  os << "solve_pif: layer width limit exceeded (peak_layer_width="
     << result.peak_layer_width << ", states_expanded="
     << result.states_expanded << ", states_stored=" << interner.size()
     << ", arena_bytes=" << interner.arena_bytes()
     << ", peak_bytes_in_ram=" << interner.peak_bytes_in_ram()
     << ", table_load_factor=" << std::fixed << std::setprecision(3)
     << interner.load_factor() << ", bytes_spilled=" << interner.bytes_spilled()
     << ")";
  throw ModelError(os.str());
}

PifResult solve_pif_packed(const PifInstance& instance,
                           const PifOptions& options) {
  const PackedTransitionSystem system(instance.base, options.victim_rule);
  const std::size_t p = system.num_cores();
  const std::size_t stride = system.state_words();
  const bool schedule = options.build_schedule;
  const bool spill = options.storage.active();

  StateInterner interner(stride, options.storage);
  interner.reserve(options.expected_states != 0 ? options.expected_states
                                                : 1024);

  // The DP materializes exactly one layer.  Settled layers survive only as
  // provenance records in `past` (schedule mode; record index == layer
  // index, record 0 is the start layer for alignment), which an active
  // StorageBudget keeps out of RAM entirely.
  PackedLayer layer;
  RecordLog past(options.storage);

  PifResult result;
  const auto finalize = [&result, &interner, &past] {
    result.peak_bytes_in_ram =
        interner.peak_bytes_in_ram() + past.bytes_in_ram();
    result.bytes_spilled = interner.bytes_spilled() + past.bytes_spilled();
  };

  Time start_t = 0;
  const std::uint64_t fp = pif_fingerprint(instance, options);
  if (options.checkpoint.enabled() && options.checkpoint.resume) {
    const std::string& path = options.checkpoint.path;
    const auto bad = [&path](const char* why) {
      return InputError("checkpoint '" + path + "': " + why);
    };
    const checkpoint::Reader reader(path, checkpoint::kKindPif, fp);
    const std::vector<std::uint64_t>& scalars = reader.section(kSecScalars);
    if (scalars.size() != 4) throw bad("malformed scalar section");
    start_t = scalars[0];
    result.states_expanded = static_cast<std::size_t>(scalars[1]);
    result.peak_layer_width = static_cast<std::size_t>(scalars[2]);
    const std::size_t count = static_cast<std::size_t>(scalars[3]);
    if (start_t > instance.deadline) {
      throw bad("resume layer past the deadline");
    }
    // The interner rebuilds by re-interning the arena in id order — table
    // layout is an implementation detail no observable result depends on.
    const std::vector<std::uint64_t>& arena = reader.section(kSecArena);
    const std::vector<std::uint64_t>& hashes = reader.section(kSecHashes);
    if (hashes.size() != count || arena.size() != count * stride) {
      throw bad("arena/hash sections disagree with the state count");
    }
    interner.reserve(count);
    for (std::size_t id = 0; id < count; ++id) {
      const auto [got, inserted] =
          interner.intern_hashed(arena.data() + id * stride, hashes[id]);
      if (!inserted || got != id) {
        throw bad("duplicate or out-of-order state record");
      }
    }
    std::vector<std::uint32_t> ids;
    reader.section_u32(kSecLayerIds, ids);
    std::vector<std::uint32_t> sizes;
    reader.section_u32(kSecLayerSizes, sizes);
    if (sizes.size() != ids.size()) {
      throw bad("front sizes disagree with the layer ids");
    }
    std::size_t width = 0;
    for (const std::uint32_t id : ids) {
      if (id >= count) throw bad("layer id out of range");
    }
    for (const std::uint32_t s : sizes) width += s;
    std::vector<std::uint32_t> faults;
    reader.section_u32(kSecLayerFaults, faults);
    if (faults.size() != width * p) {
      throw bad("fault vectors disagree with the layer width");
    }
    std::vector<std::uint32_t> prov;
    std::vector<std::uint32_t> evicts;
    if (schedule) {
      reader.section_u32(kSecLayerProv, prov);
      if (prov.size() != width * 4) {
        throw bad("provenance disagrees with the layer width");
      }
      reader.section_u32(kSecLayerEvicts, evicts);
    }
    layer.ids.assign(ids.begin(), ids.end());
    layer.evict_pool.assign(evicts.begin(), evicts.end());
    layer.fronts.resize(ids.size());
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < ids.size(); ++s) {
      PackedFront& front = layer.fronts[s];
      front.faults.assign(
          faults.begin() + static_cast<std::ptrdiff_t>(cursor * p),
          faults.begin() +
              static_cast<std::ptrdiff_t>((cursor + sizes[s]) * p));
      front.prov.resize(sizes[s]);
      if (schedule) {
        for (std::size_t e = 0; e < sizes[s]; ++e) {
          ParetoProv& pr = front.prov[e];
          const std::size_t base = (cursor + e) * 4;
          pr.parent_state = prov[base];
          pr.parent_entry = prov[base + 1];
          pr.evict_off = prov[base + 2];
          pr.evict_len = prov[base + 3];
          if (static_cast<std::size_t>(pr.evict_off) + pr.evict_len >
              layer.evict_pool.size()) {
            throw bad("eviction span out of range");
          }
        }
      }
      cursor += sizes[s];
    }
    if (schedule) {
      std::vector<std::uint32_t> lens;
      reader.section_u32(kSecPastIndex, lens);
      if (lens.size() != static_cast<std::size_t>(start_t) + 1) {
        throw bad("layer log disagrees with the resume layer");
      }
      const std::vector<std::uint64_t>& words = reader.section(kSecPastWords);
      std::size_t off = 0;
      for (const std::uint32_t len : lens) {
        if (len > words.size() - off) throw bad("truncated layer log");
        past.append(words.data() + off, len);
        off += len;
      }
      if (off != words.size()) throw bad("trailing layer log words");
    }
    result.resumed = true;
    MCP_CHECKED_ONLY({
      for (const PackedFront& front : layer.fronts) validate_front(front, p);
      interner.validate();
    });
  } else {
    std::vector<std::uint64_t> start(stride);
    system.initial(start.data());
    interner.intern(start.data());  // id 0
    layer.ids.push_back(0);
    layer.fronts.emplace_back();
    layer.fronts.back().faults.assign(p, 0);
    layer.fronts.back().prov.push_back(ParetoProv{});
    if (schedule) {
      const std::vector<std::uint64_t> rec = serialize_layer_prov(layer);
      past.append(rec.data(), rec.size());
    }
  }

  // Interned id -> state index in the layer being merged, stamped per layer
  // so the map never needs clearing (ids are dense).
  std::vector<std::uint32_t> id_stamp;
  std::vector<std::uint32_t> id_index;
  std::uint32_t stamp = 0;

  std::vector<ChunkEmits> chunks;
  std::vector<PackedTransitionSystem::StepScratch> scratches;
  PackedTransitionSystem::StepScratch serial_scratch;
  std::vector<std::uint32_t> advanced(p);

  // Retired fronts and layer shells, recycled so the steady-state loop stops
  // allocating (only meaningful without schedule retention).
  std::vector<PackedFront> spare_fronts;
  PackedLayer spare_layer;
  PackedLayer sort_buf;
  std::vector<std::uint32_t> order;

  std::uint32_t checkpoints_written = 0;
  for (Time t = start_t; t < instance.deadline; ++t) {
    // Early success: a finished state's fault vector is frozen, and every
    // vector still alive satisfies the bounds by construction.  Scanning in
    // ascending id order makes the witness choice worker-count independent.
    for (std::size_t s = 0; s < layer.ids.size(); ++s) {
      if (system.is_terminal(interner.state(layer.ids[s])) &&
          layer.fronts[s].size() > 0) {
        result.feasible = true;
        result.decided_at = t;
        if (schedule) {
          result.schedule = reconstruct_logged(
              past, past.size() - 1, static_cast<std::uint32_t>(s), 0);
        }
        finalize();
        return result;
      }
    }

    // Expansion: fixed-size chunks of the (id-sorted) state list.  Both
    // paths below walk (state, outcome, surviving entry) in the same order
    // and intern each successor on its first surviving emission, so they
    // build identical layers; the parallel path merely buffers per chunk.
    const std::size_t num_states = layer.ids.size();
    const std::size_t num_chunks =
        (num_states + kChunkStates - 1) / kChunkStates;
    PackedLayer next = std::move(spare_layer);
    next.ids.clear();
    next.evict_pool.clear();
    for (PackedFront& front : next.fronts) {
      spare_fronts.push_back(std::move(front));
    }
    next.fronts.clear();
    next.ids.reserve(num_states);
    next.fronts.reserve(num_states);
    ++stamp;

    // Allocation sentry (PifOptions::alloc_guard_after_layer): past the
    // declared warm-up, the merging thread runs the rest of the layer
    // guarded, and each expansion chunk arms its own guard (guards are
    // per-thread).  Every amortized growth point below carries a scoped
    // AllocAllow naming what it grows; anything else that allocates throws.
    const bool guard_layer = options.alloc_guard_after_layer != 0 &&
                             t >= options.alloc_guard_after_layer;
    std::optional<AllocGuard> layer_guard;
    if (guard_layer) layer_guard.emplace("pif layer loop");

    const auto insert_emission = [&](std::uint32_t nid,
                                     const std::uint32_t* fv,
                                     std::uint32_t src_state,
                                     std::uint32_t src_entry,
                                     const PageId* evictions,
                                     std::uint32_t num_evictions) {
      if (nid >= id_stamp.size()) {
        // Headroom so the maps don't resize on every freshly interned id.
        AllocAllow allow;  // declared growth: id-map headroom
        id_stamp.resize(interner.size() + 256, 0);
        id_index.resize(interner.size() + 256, 0);
      }
      std::uint32_t idx;
      if (id_stamp[nid] != stamp) {
        // Declared growth: layer id/front tables (recycled across layers;
        // they grow only when a layer widens past every layer before it).
        AllocAllow allow;
        id_stamp[nid] = stamp;
        idx = static_cast<std::uint32_t>(next.ids.size());
        id_index[nid] = idx;
        next.ids.push_back(nid);
        if (spare_fronts.empty()) {
          next.fronts.emplace_back();
        } else {
          next.fronts.push_back(std::move(spare_fronts.back()));
          spare_fronts.pop_back();
          next.fronts.back().faults.clear();
          next.fronts.back().prov.clear();
        }
      } else {
        idx = id_index[nid];
      }
      ParetoProv prov;
      prov.parent_state = src_state;
      prov.parent_entry = src_entry;
      if (schedule) {
        prov.evict_off = static_cast<std::uint32_t>(next.evict_pool.size());
        prov.evict_len = num_evictions;
      }
      if (pareto_insert_packed(next.fronts[idx], p, fv, prov) && schedule &&
          num_evictions > 0) {
        AllocAllow allow;  // declared growth: schedule-mode eviction pool
        next.evict_pool.insert(next.evict_pool.end(), evictions,
                               evictions + num_evictions);
      }
    };

    // Pool dispatch pays off only with real workers and more than one chunk.
    // An active StorageBudget forces the serial path: workers would race the
    // spill layer's residency bookkeeping (see SpillArena's thread-safety
    // note), and out-of-core solves are disk-bound anyway.
    const bool parallel = options.workers != 1 && num_chunks > 1 && !spill &&
                          ThreadPool::global().num_workers() > 1;
    if (!parallel) {
      for (std::size_t s = 0; s < num_states; ++s) {
        const PackedFront& front = layer.fronts[s];
        system.expand(interner.state(layer.ids[s]), serial_scratch,
                      [&](const PackedOutcome& outcome) {
          std::uint32_t nid = StateInterner::kNoState;
          for (std::size_t v = 0; v < front.size(); ++v) {
            std::copy_n(front.entry(p, v), p, advanced.begin());
            bool alive = true;
            for (std::size_t j = 0; j < p; ++j) {
              if ((outcome.faulted_cores >> j) & 1u) {
                if (++advanced[j] > instance.bounds[j]) {
                  alive = false;
                  break;
                }
              }
            }
            if (!alive) continue;
            if (nid == StateInterner::kNoState) {
              nid = interner.intern(outcome.next).first;
            }
            insert_emission(
                nid, advanced.data(), static_cast<std::uint32_t>(s),
                static_cast<std::uint32_t>(v), outcome.evictions.data(),
                static_cast<std::uint32_t>(outcome.evictions.size()));
          }
        });
      }
    } else {
      {
        // Declared growth: per-chunk buffers appear as layers widen.
        AllocAllow allow;
        chunks.resize(num_chunks);
        scratches.resize(num_chunks);
      }
      const auto expand_chunk = [&](std::size_t c) {
        ChunkEmits& out = chunks[c];
        out.clear();
        PackedTransitionSystem::StepScratch& scratch = scratches[c];
        {
          // Declared growth: first-use warm-up — a chunk index first used on
          // a later (wider) layer starts with cold scratch buffers.
          AllocAllow allow;
          out.adv.resize(p);
          scratch.work.reserve(stride);
          scratch.locked.reserve(stride);
          scratch.evictions.reserve(p);
        }
        std::optional<AllocGuard> chunk_guard;
        if (guard_layer) chunk_guard.emplace("pif expansion chunk");
        std::vector<std::uint32_t>& adv = out.adv;
        const std::size_t begin = c * kChunkStates;
        const std::size_t end = std::min(num_states, begin + kChunkStates);
        for (std::size_t s = begin; s < end; ++s) {
          const PackedFront& front = layer.fronts[s];
          system.expand(interner.state(layer.ids[s]), scratch,
                        [&](const PackedOutcome& outcome) {
            std::uint32_t count = 0;
            for (std::size_t v = 0; v < front.size(); ++v) {
              std::copy_n(front.entry(p, v), p, adv.begin());
              bool alive = true;
              for (std::size_t j = 0; j < p; ++j) {
                if ((outcome.faulted_cores >> j) & 1u) {
                  if (++adv[j] > instance.bounds[j]) {
                    alive = false;
                    break;
                  }
                }
              }
              if (!alive) continue;
              {
                // Declared growth: chunk emission buffers (recycled; grow
                // only while the layer widens past the chunk's past peaks).
                AllocAllow allow;
                out.faults.insert(out.faults.end(), adv.begin(), adv.end());
                out.src_entry.push_back(static_cast<std::uint32_t>(v));
              }
              ++count;
            }
            if (count == 0) return;
            AllocAllow allow;  // declared growth: chunk emission buffers
            out.words.insert(out.words.end(), outcome.next,
                             outcome.next + stride);
            out.out_state.push_back(static_cast<std::uint32_t>(s));
            out.out_count.push_back(count);
            if (schedule) {
              out.out_evict_off.push_back(
                  static_cast<std::uint32_t>(out.evicts.size()));
              out.out_evict_len.push_back(
                  static_cast<std::uint32_t>(outcome.evictions.size()));
              out.evicts.insert(out.evicts.end(), outcome.evictions.begin(),
                                outcome.evictions.end());
            }
          });
        }
      };
      {
        // Declared growth: pool dispatch packages the chunk tasks on the
        // heap.  (Guards are per-thread, so this thread's Allow does not
        // suspend the workers' chunk guards — only chunks this thread runs
        // inline, which keep worker-side enforcement meaningful at >= 2
        // workers.)
        AllocAllow allow;
        ThreadPool::global().run_indexed(num_chunks, expand_chunk,
                                         options.workers);
      }

      // Merge serially, in chunk order — the exact order the serial path
      // above would use.
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const ChunkEmits& out = chunks[c];
        std::size_t cursor = 0;
        for (std::size_t o = 0; o < out.out_state.size(); ++o) {
          const std::uint32_t nid =
              interner.intern(out.words.data() + o * stride).first;
          const std::uint32_t ev_len = schedule ? out.out_evict_len[o] : 0;
          const PageId* ev =
              ev_len > 0 ? out.evicts.data() + out.out_evict_off[o] : nullptr;
          for (std::uint32_t e = 0; e < out.out_count[o]; ++e, ++cursor) {
            insert_emission(nid, out.faults.data() + cursor * p,
                            out.out_state[o], out.src_entry[cursor], ev,
                            ev_len);
          }
        }
      }
    }
    result.states_expanded += num_states;

    // Sort the merged layer by id so the next round's chunking, terminal
    // scan, and witness choice are canonical.  `sort_buf` ping-pongs with
    // `next`'s buffers across layers, so the rebuild allocates nothing in
    // steady state (and is skipped entirely when the merge order happens to
    // be id-sorted already).
    if (!std::is_sorted(next.ids.begin(), next.ids.end())) {
      AllocAllow allow;  // declared growth: recycled order/sort buffers
      order.resize(next.ids.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&next](std::uint32_t a, std::uint32_t b) {
                  return next.ids[a] < next.ids[b];
                });
      sort_buf.ids.clear();
      sort_buf.fronts.clear();
      sort_buf.ids.reserve(next.ids.size());
      sort_buf.fronts.reserve(next.fronts.size());
      sort_buf.evict_pool = std::move(next.evict_pool);
      for (std::uint32_t i : order) {
        sort_buf.ids.push_back(next.ids[i]);
        sort_buf.fronts.push_back(std::move(next.fronts[i]));
      }
      std::swap(next, sort_buf);
    }

    // The settled layer's provenance moves into the log (schedule mode) and
    // its buffers return to the recycling pools — one layer materialized in
    // either mode.  Checkpoint serialization below is declared outside the
    // §10 steady-state allocation claim, so the layer guard ends here.
    layer_guard.reset();
    {
      // Declared growth: layer/front recycling pools and the layer log.
      AllocAllow allow;
      if (schedule) {
        const std::vector<std::uint64_t> rec = serialize_layer_prov(next);
        past.append(rec.data(), rec.size());
      }
      spare_layer = std::move(layer);
      for (PackedFront& front : spare_layer.fronts) {
        spare_fronts.push_back(std::move(front));
      }
      spare_layer.fronts.clear();
      layer = std::move(next);
    }

    // Checked builds: every merged front is strictly sorted, duplicate-free
    // and Pareto-minimal, and the interner stays structurally sound as the
    // layer's successors were interned into it.
    MCP_CHECKED_ONLY({
      for (const PackedFront& front : layer.fronts) {
        validate_front(front, p);
      }
      interner.validate();
    });

    result.peak_layer_width = std::max(result.peak_layer_width, layer.width());
    if (options.max_layer_width != 0 &&
        result.peak_layer_width > options.max_layer_width) {
      throw_width_limit(result, interner);
    }
    if (layer.ids.empty()) {  // every branch blew a bound
      result.feasible = false;
      result.decided_at = t + 1;
      finalize();
      return result;
    }

    if (options.checkpoint.enabled() &&
        (t + 1) % options.checkpoint.every == 0) {
      checkpoint::Writer writer(checkpoint::kKindPif, fp);
      const std::size_t count = interner.size();
      const std::uint64_t scalars[4] = {t + 1, result.states_expanded,
                                        result.peak_layer_width, count};
      writer.section(kSecScalars, scalars, 4);
      {
        std::vector<std::uint64_t> arena;
        arena.reserve(count * stride);
        std::vector<std::uint64_t> hashes;
        hashes.reserve(count);
        for (std::uint32_t id = 0; id < count; ++id) {
          const std::uint64_t* words = interner.state(id);
          arena.insert(arena.end(), words, words + stride);
          hashes.push_back(interner.stored_hash(id));
        }
        writer.section(kSecArena, arena);
        writer.section(kSecHashes, hashes);
      }
      writer.section(kSecLayerIds, checkpoint::pack_u32(layer.ids));
      {
        std::vector<std::uint32_t> sizes;
        std::vector<std::uint32_t> faults;
        std::vector<std::uint32_t> prov;
        for (const PackedFront& front : layer.fronts) {
          sizes.push_back(static_cast<std::uint32_t>(front.size()));
          faults.insert(faults.end(), front.faults.begin(),
                        front.faults.end());
          if (schedule) {
            for (const ParetoProv& pr : front.prov) {
              prov.push_back(pr.parent_state);
              prov.push_back(pr.parent_entry);
              prov.push_back(pr.evict_off);
              prov.push_back(pr.evict_len);
            }
          }
        }
        writer.section(kSecLayerSizes, checkpoint::pack_u32(sizes));
        writer.section(kSecLayerFaults, checkpoint::pack_u32(faults));
        if (schedule) {
          writer.section(kSecLayerProv, checkpoint::pack_u32(prov));
          writer.section(kSecLayerEvicts,
                         checkpoint::pack_u32(layer.evict_pool));
          std::vector<std::uint32_t> lens;
          std::vector<std::uint64_t> log_words;
          std::vector<std::uint64_t> rec;
          for (std::size_t i = 0; i < past.size(); ++i) {
            past.read(i, rec);
            lens.push_back(static_cast<std::uint32_t>(rec.size()));
            log_words.insert(log_words.end(), rec.begin(), rec.end());
          }
          writer.section(kSecPastIndex, checkpoint::pack_u32(lens));
          writer.section(kSecPastWords, log_words);
        }
      }
      writer.write(options.checkpoint.path);
      ++checkpoints_written;
      if (options.checkpoint.halt_after_checkpoints != 0 &&
          checkpoints_written >= options.checkpoint.halt_after_checkpoints) {
        throw SolveInterrupted("solve_pif: halted after " +
                               std::to_string(checkpoints_written) +
                               " checkpoint(s)");
      }
    }
  }

  result.feasible = !layer.ids.empty();
  result.decided_at = instance.deadline;
  if (result.feasible && schedule) {
    result.schedule = reconstruct_logged(past, past.size() - 1, 0, 0);
  }
  finalize();
  return result;
}

}  // namespace

PifResult solve_pif(const PifInstance& instance, const PifOptions& options) {
  instance.validate();
  if (options.engine == OfflineEngine::kPacked &&
      PackedTransitionSystem::supports(instance.base)) {
    return solve_pif_packed(instance, options);
  }
  return solve_pif_reference(instance, options);
}

bool verify_pif_witness(const PifInstance& instance,
                        const std::vector<PageId>& schedule) {
  instance.validate();
  ReplayStrategy strategy(schedule, ReplayStrategy::OnExhausted::kFallbackLru);
  Simulator sim(instance.base.sim_config());
  const RunStats stats = sim.run(instance.base.requests, strategy);
  return stats.within_bounds_at(instance.deadline, instance.bounds);
}

}  // namespace mcp
