// Checkpoint/resume for the packed offline solvers.
//
// Both packed searches advance through well-defined serial boundaries — the
// FTF Dial queue settles one fault-distance bucket at a time, the PIF DP one
// timestep layer at a time — and the deterministic chunked expansion makes
// the solver state at such a boundary a pure function of (instance, options,
// boundary index).  A checkpoint is therefore a full snapshot at a boundary:
// the interner contents, the per-id search arrays, and the live frontier.
// Resuming replays nothing; it rebuilds the structures and continues from
// the next boundary, producing results bit-equal to an uninterrupted solve.
//
// File format (everything `uint64_t` words, little-endian on disk as
// written by the host):
//
//   [0] magic   [1] version<<32 | kind   [2] fingerprint
//   then sections: { tag, word_count, words... } repeated
//   [last] checksum — mix64 fold of every preceding word
//
// The fingerprint folds the instance and the trajectory-affecting options
// (victim rule, schedule building, state limits); resuming against a
// different instance or incompatible options fails with InputError, as do
// truncated, corrupted, or wrong-kind files.  Writes are atomic
// (`path.tmp` + rename), so a solve killed mid-checkpoint leaves the
// previous checkpoint intact — the invariant a SIGKILL'd solve relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "offline/instance.hpp"

namespace mcp {

/// Thrown by the `halt_after_checkpoints` test hook once the requested
/// number of checkpoints has been written — a deterministic stand-in for
/// SIGKILL that lets in-process tests exercise every resume boundary.
class SolveInterrupted : public std::runtime_error {
 public:
  explicit SolveInterrupted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Checkpointing knobs shared by FtfOptions/PifOptions.
struct CheckpointOptions {
  /// Checkpoint file; "" disables checkpointing entirely.
  std::string path;
  /// Snapshot every N settled boundaries (buckets for FTF, layers for PIF).
  std::uint32_t every = 1;
  /// Load `path` at solve start and continue from its boundary.
  bool resume = false;
  /// Test hook: throw SolveInterrupted after writing this many checkpoints
  /// (0 = never) — the in-process equivalent of killing the solve.
  std::uint32_t halt_after_checkpoints = 0;

  [[nodiscard]] bool enabled() const noexcept { return !path.empty(); }
};

namespace checkpoint {

constexpr std::uint32_t kKindFtf = 1;
constexpr std::uint32_t kKindPif = 2;

/// One mix64 step of the fingerprint/checksum chain.
[[nodiscard]] std::uint64_t fold(std::uint64_t h, std::uint64_t word) noexcept;

/// Fingerprint of the shared instance data (requests, K, tau).  Solvers
/// fold their trajectory-affecting options on top.
[[nodiscard]] std::uint64_t fingerprint(const OfflineInstance& instance);
/// Instance fingerprint plus deadline and per-core bounds.
[[nodiscard]] std::uint64_t fingerprint(const PifInstance& instance);

/// Packs a `uint32_t` array into words: word 0 = element count, then two
/// elements per word.  The inverse of unpack_u32.
[[nodiscard]] std::vector<std::uint64_t> pack_u32(const std::uint32_t* data,
                                                  std::size_t count);
[[nodiscard]] std::vector<std::uint64_t> pack_u32(
    const std::vector<std::uint32_t>& values);
void unpack_u32(const std::vector<std::uint64_t>& words,
                std::vector<std::uint32_t>& out);

/// Accumulates sections and writes them atomically.  One-shot: build,
/// write(), discard.
class Writer {
 public:
  Writer(std::uint32_t kind, std::uint64_t fingerprint);

  /// Appends section `tag` (tags must be unique per file; enforced by the
  /// reader).  `count` may be zero.
  void section(std::uint32_t tag, const std::uint64_t* words,
               std::size_t count);
  void section(std::uint32_t tag, const std::vector<std::uint64_t>& words) {
    section(tag, words.data(), words.size());
  }

  /// Seals the checksum and writes `path` atomically via `path.tmp` +
  /// fsync + rename.  Throws InputError on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<std::uint64_t> words_;
};

/// Loads and validates a checkpoint file.  The constructor throws
/// InputError — never UB — on a missing/truncated/corrupted file, a magic,
/// version, or kind mismatch, or a fingerprint that does not match the
/// (instance, options) being resumed.
class Reader {
 public:
  Reader(const std::string& path, std::uint32_t kind,
         std::uint64_t fingerprint);

  [[nodiscard]] bool has(std::uint32_t tag) const noexcept;
  /// The words of section `tag`; InputError if absent.
  [[nodiscard]] const std::vector<std::uint64_t>& section(
      std::uint32_t tag) const;
  /// section() + unpack_u32.
  void section_u32(std::uint32_t tag, std::vector<std::uint32_t>& out) const;

 private:
  std::string path_;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>> sections_;
};

}  // namespace checkpoint

}  // namespace mcp
