#include "offline/competitive.hpp"

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "offline/ftf_solver.hpp"

namespace mcp {

namespace {

/// One trial's measurement (a sweep cell).
struct TrialOutcome {
  double ratio = 0.0;
  bool optimal = false;
  bool nonempty = false;
};

}  // namespace

CompetitiveReport measure_competitive_ratio(const StrategyFactory& strategy,
                                            const InstanceGenerator& generator,
                                            std::size_t trials) {
  MCP_REQUIRE(trials > 0, "measure_competitive_ratio: no trials");
  // Each trial solves its own instance exactly and simulates the strategy on
  // it — fully independent, so the trials are swept on the shared pool.  The
  // reduction below walks the results in trial order, so the report (mean
  // included: fixed summation order) is bit-identical for any worker count.
  SweepRunner sweep;
  const std::vector<TrialOutcome> outcomes =
      sweep.run(trials, [&](std::size_t trial, Rng& /*rng*/) {
        TrialOutcome outcome;
        const OfflineInstance instance = generator(trial);
        if (instance.requests.total_requests() == 0) return outcome;
        const Count opt = solve_ftf(instance).min_faults;
        MCP_ASSERT_MSG(opt > 0, "nonempty instance must have compulsory misses");
        const auto online = strategy();
        const Count faults =
            simulate(instance.sim_config(), instance.requests, *online)
                .total_faults();
        outcome.nonempty = true;
        outcome.ratio = static_cast<double>(faults) / static_cast<double>(opt);
        outcome.optimal = faults == opt;
        return outcome;
      });

  CompetitiveReport report;
  double ratio_sum = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const TrialOutcome& outcome = outcomes[trial];
    if (!outcome.nonempty) continue;
    ++report.samples;
    ratio_sum += outcome.ratio;
    if (outcome.optimal) ++report.optimal_hits;
    if (outcome.ratio > report.max_ratio) {
      report.max_ratio = outcome.ratio;
      report.worst_trial = trial;
    }
  }
  MCP_REQUIRE(report.samples > 0, "all generated instances were empty");
  report.mean_ratio = ratio_sum / static_cast<double>(report.samples);
  return report;
}

CompetitiveReport measure_competitive_ratio(const BatchStrategySpec& strategy,
                                            const InstanceGenerator& generator,
                                            std::size_t trials) {
  MCP_REQUIRE(trials > 0, "measure_competitive_ratio: no trials");
  struct TrialCase {
    OfflineInstance instance;
    Count opt = 0;
    bool nonempty = false;
  };
  // Phase 1: generate and exactly solve each trial — the expensive,
  // per-trial-heterogeneous part — as independent sweep cells.
  SweepRunner sweep;
  const std::vector<TrialCase> cases =
      sweep.run(trials, [&](std::size_t trial, Rng& /*rng*/) {
        TrialCase tc;
        tc.instance = generator(trial);
        if (tc.instance.requests.total_requests() == 0) return tc;
        tc.opt = solve_ftf(tc.instance).min_faults;
        MCP_ASSERT_MSG(tc.opt > 0,
                       "nonempty instance must have compulsory misses");
        tc.nonempty = true;
        return tc;
      });

  // Phase 2: simulate the strategy on every nonempty instance as lockstep
  // lanes.  Jobs are built in trial order, so the reduction below walks the
  // same order as the scalar overload's — bit-identical report.
  std::vector<SimJob> jobs;
  std::vector<std::size_t> trial_of_job;
  jobs.reserve(trials);
  trial_of_job.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    if (!cases[trial].nonempty) continue;
    SimJob job;
    job.config = cases[trial].instance.sim_config();
    job.config.record_fault_timeline = false;  // totals only
    job.requests = &cases[trial].instance.requests;
    job.strategy = strategy;
    jobs.push_back(std::move(job));
    trial_of_job.push_back(trial);
  }
  MCP_REQUIRE(!jobs.empty(), "all generated instances were empty");
  const std::vector<RunStats> stats = sweep.run_jobs(jobs);

  CompetitiveReport report;
  double ratio_sum = 0.0;
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const std::size_t trial = trial_of_job[idx];
    const Count faults = stats[idx].total_faults();
    const double ratio =
        static_cast<double>(faults) / static_cast<double>(cases[trial].opt);
    ++report.samples;
    ratio_sum += ratio;
    if (faults == cases[trial].opt) ++report.optimal_hits;
    if (ratio > report.max_ratio) {
      report.max_ratio = ratio;
      report.worst_trial = trial;
    }
  }
  report.mean_ratio = ratio_sum / static_cast<double>(report.samples);
  return report;
}

}  // namespace mcp
