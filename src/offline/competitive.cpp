#include "offline/competitive.hpp"

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "offline/ftf_solver.hpp"

namespace mcp {

CompetitiveReport measure_competitive_ratio(const StrategyFactory& strategy,
                                            const InstanceGenerator& generator,
                                            std::size_t trials) {
  MCP_REQUIRE(trials > 0, "measure_competitive_ratio: no trials");
  CompetitiveReport report;
  double ratio_sum = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const OfflineInstance instance = generator(trial);
    if (instance.requests.total_requests() == 0) continue;
    const Count opt = solve_ftf(instance).min_faults;
    MCP_ASSERT_MSG(opt > 0, "nonempty instance must have compulsory misses");
    const auto online = strategy();
    const Count faults =
        simulate(instance.sim_config(), instance.requests, *online)
            .total_faults();
    const double ratio =
        static_cast<double>(faults) / static_cast<double>(opt);
    ++report.samples;
    ratio_sum += ratio;
    if (faults == opt) ++report.optimal_hits;
    if (ratio > report.max_ratio) {
      report.max_ratio = ratio;
      report.worst_trial = trial;
    }
  }
  MCP_REQUIRE(report.samples > 0, "all generated instances were empty");
  report.mean_ratio = ratio_sum / static_cast<double>(report.samples);
  return report;
}

}  // namespace mcp
