#include "offline/competitive.hpp"

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "offline/ftf_solver.hpp"

namespace mcp {

namespace {

/// One trial's measurement (a sweep cell).
struct TrialOutcome {
  double ratio = 0.0;
  bool optimal = false;
  bool nonempty = false;
};

}  // namespace

CompetitiveReport measure_competitive_ratio(const StrategyFactory& strategy,
                                            const InstanceGenerator& generator,
                                            std::size_t trials) {
  MCP_REQUIRE(trials > 0, "measure_competitive_ratio: no trials");
  // Each trial solves its own instance exactly and simulates the strategy on
  // it — fully independent, so the trials are swept on the shared pool.  The
  // reduction below walks the results in trial order, so the report (mean
  // included: fixed summation order) is bit-identical for any worker count.
  SweepRunner sweep;
  const std::vector<TrialOutcome> outcomes =
      sweep.run(trials, [&](std::size_t trial, Rng& /*rng*/) {
        TrialOutcome outcome;
        const OfflineInstance instance = generator(trial);
        if (instance.requests.total_requests() == 0) return outcome;
        const Count opt = solve_ftf(instance).min_faults;
        MCP_ASSERT_MSG(opt > 0, "nonempty instance must have compulsory misses");
        const auto online = strategy();
        const Count faults =
            simulate(instance.sim_config(), instance.requests, *online)
                .total_faults();
        outcome.nonempty = true;
        outcome.ratio = static_cast<double>(faults) / static_cast<double>(opt);
        outcome.optimal = faults == opt;
        return outcome;
      });

  CompetitiveReport report;
  double ratio_sum = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const TrialOutcome& outcome = outcomes[trial];
    if (!outcome.nonempty) continue;
    ++report.samples;
    ratio_sum += outcome.ratio;
    if (outcome.optimal) ++report.optimal_hits;
    if (outcome.ratio > report.max_ratio) {
      report.max_ratio = outcome.ratio;
      report.worst_trial = trial;
    }
  }
  MCP_REQUIRE(report.samples > 0, "all generated instances were empty");
  report.mean_ratio = ratio_sum / static_cast<double>(report.samples);
  return report;
}

}  // namespace mcp
