// Empirical competitive-ratio measurement.
//
// The paper's closing discussion asks what online multicore paging
// strategies should be compared against; this harness measures, on batches
// of tiny instances where Algorithm 1 can compute the true optimum, the
// distribution of strategy(R) / OPT(R).  It cannot prove bounds, but it
// makes the theory's qualitative picture quantitative: shared FITF hovers
// near 1 yet exceeds it (non-optimality, Lemma 4); LRU's tail is heavier;
// and adversarial families push ratios far beyond what random inputs show.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/batch_state.hpp"
#include "core/strategy.hpp"
#include "offline/instance.hpp"

namespace mcp {

/// Produces a fresh strategy per trial (strategies are stateful).
using StrategyFactory = std::function<std::unique_ptr<CacheStrategy>()>;
/// Produces the instance for a given trial index (deterministic please).
using InstanceGenerator = std::function<OfflineInstance(std::size_t trial)>;

struct CompetitiveReport {
  std::size_t samples = 0;
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
  /// Instances on which the strategy exactly met the optimum.
  std::size_t optimal_hits = 0;
  /// Trial index attaining max_ratio (for reproduction).
  std::size_t worst_trial = 0;
};

/// Runs `trials` instances, solving each exactly with Algorithm 1 and
/// simulating `strategy` on it.  Instances must stay tiny (the exact solver
/// is exponential in K and p).  The trials are independent cells swept on
/// the shared thread pool, so both callables may be invoked concurrently:
/// they must be pure functions of their arguments (no shared mutable
/// state).  The report is bit-identical for any worker count.
[[nodiscard]] CompetitiveReport measure_competitive_ratio(
    const StrategyFactory& strategy, const InstanceGenerator& generator,
    std::size_t trials);

/// Batched variant: the strategy under test is a BatchStrategySpec, so the
/// per-trial simulations run as lockstep lanes through the batch engine
/// (SweepRunner::run_jobs) after the generate + exact-solve phase sweeps on
/// the pool.  Bit-identical report to the StrategyFactory overload with the
/// matching strategy object (same trial order in every reduction).  A
/// static-partition spec requires every generated instance to match its
/// core count and cache size.
[[nodiscard]] CompetitiveReport measure_competitive_ratio(
    const BatchStrategySpec& strategy, const InstanceGenerator& generator,
    std::size_t trials);

}  // namespace mcp
