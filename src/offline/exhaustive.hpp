// Exhaustive offline searches driven through the *simulator* — reference
// implementations that are deliberately independent of the TransitionSystem
// used by the DP solvers, so the two can cross-validate each other.
//
// The search tree is over eviction decisions: a branch is fixed by the list
// of victims chosen at the faults that required one.  Each tree node is
// explored by re-running the simulator with the decision prefix and probing
// the candidate victims of the first undecided fault.  Exponential, for
// tiny instances only.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "offline/instance.hpp"

namespace mcp {

struct ExhaustiveFtfResult {
  Count min_faults = 0;
  std::vector<PageId> best_schedule;  ///< per-eviction victims (no
                                      ///< kInvalidPage placeholders)
  std::size_t simulator_runs = 0;
};

/// Minimum total faults over all honest eviction schedules, by exhaustive
/// search.  Throws ModelError after `max_runs` simulator runs (0 = no cap).
[[nodiscard]] ExhaustiveFtfResult exhaustive_ftf(const OfflineInstance& instance,
                                                 std::size_t max_runs = 0);

struct ExhaustivePifResult {
  bool feasible = false;
  std::size_t simulator_runs = 0;
};

/// Decides PIF over all honest eviction schedules by exhaustive search with
/// bound pruning (a branch dies as soon as any core exceeds its bound
/// before the deadline).
[[nodiscard]] ExhaustivePifResult exhaustive_pif(const PifInstance& instance,
                                                 std::size_t max_runs = 0);

}  // namespace mcp
