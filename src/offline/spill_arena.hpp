// Spillable storage for the out-of-core offline searches.
//
// The packed solvers' RAM ceiling is the StateInterner arena (every distinct
// state, stride words each) and, for PIF witness reconstruction, the retained
// per-layer fronts.  This module turns both into out-of-core structures:
//
//  * `SpillArena` — an append-only arena of fixed-stride `uint64_t` blocks,
//    stored in power-of-two-block segments.  Without a `StorageBudget` it is
//    a plain segmented heap arena (segmenting alone buys pointer stability:
//    `block()` results survive later appends, unlike the old
//    `std::vector::data()` arena).  With a budget, segments are mmap'd
//    MAP_SHARED from an unlinked temporary file; when resident bytes exceed
//    the cap, the least-recently-touched segments are written back
//    (`msync`) and dropped from RAM (`madvise(MADV_DONTNEED)`) — the mapping
//    stays valid, so a later touch transparently reloads from disk and is
//    re-charged against the budget.  In the searches the cold segments are
//    the Dial queue's settled prefix / finished PIF layers, which expansion
//    rarely revisits (only hash-collision dedup probes reach back).
//
//  * `RecordLog` — an append-once/read-back store of variable-length word
//    records (serialized PIF layers).  In RAM without a budget; with one,
//    records go straight to an unlinked temporary file via pwrite/pread and
//    cost no resident bytes.
//
// Both structures share `StorageBudget`, surface `bytes_in_ram` /
// `bytes_spilled` accounting for solver stats, and carry MCP_CHECKED
// validators (`SpillArena::validate` checks every spill-segment header
// against the arena's geometry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mcp {

/// RAM cap shared by the spillable structures of one solve.  `ram_bytes` is
/// the resident-segment budget in bytes (0 = unbounded: everything stays in
/// RAM and no backing files are created).  `dir` is where the unlinked
/// temporary spill files live ("" = TMPDIR or /tmp).  `segment_bytes` is the
/// spill granularity (0 = 1 MiB; tests use small segments to exercise
/// eviction on small instances).
struct StorageBudget {
  std::size_t ram_bytes = 0;
  std::string dir;
  std::size_t segment_bytes = 0;

  [[nodiscard]] bool active() const noexcept { return ram_bytes != 0; }
};

struct SpillArenaTestAccess;  // corruption-injection backdoor (tests only)

/// Append-only arena of fixed-stride `uint64_t` blocks with optional
/// file-backed spilling.  Block pointers are stable across appends but — in
/// budget mode — only until the next `block()`/`append()` call evicts the
/// segment; callers copy words out before touching other blocks (the
/// searches already do: expansion snapshots its state up front).
///
/// Thread safety: in budget mode all access must be serial (touching blocks
/// mutates residency accounting).  Without a budget, concurrent `block()`
/// reads are safe once no `append()` is running (the solvers' frozen-arena
/// expansion phases rely on this).
class SpillArena {
 public:
  /// `stride`: words per block.  Blocks never straddle segments.
  explicit SpillArena(std::size_t stride, StorageBudget budget = {});
  ~SpillArena();

  SpillArena(const SpillArena&) = delete;
  SpillArena& operator=(const SpillArena&) = delete;

  /// Appends one `stride()`-word block; returns its dense index.
  std::uint32_t append(const std::uint64_t* words);

  /// The block at `index` — faults its segment back in under a budget.
  /// Without a budget this performs no bookkeeping writes at all, so
  /// concurrent `block()` reads are race-free (the LRU clock only matters
  /// when eviction is possible).
  [[nodiscard]] const std::uint64_t* block(std::uint32_t index) const noexcept {
    const Segment& seg = segments_[index >> log2_blocks_];
    if (spilling_) {
      if (!seg.resident) fault_in(seg);
      seg.last_touch = ++clock_;
    }
    return seg.data +
           static_cast<std::size_t>(index & block_mask_) * stride_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return num_blocks_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool spilling() const noexcept { return spilling_; }

  /// Pre-sizes the segment directory for `blocks` blocks (segments
  /// themselves are created lazily on append).
  void reserve(std::size_t blocks);

  /// Resident segment bytes currently charged against the budget (equals
  /// total data bytes when no budget is set).
  [[nodiscard]] std::size_t bytes_in_ram() const noexcept {
    return resident_bytes_;
  }
  /// High-water mark of bytes_in_ram().
  [[nodiscard]] std::size_t peak_bytes_in_ram() const noexcept {
    return peak_resident_bytes_;
  }
  /// Cumulative bytes written back to the spill file by evictions.
  [[nodiscard]] std::size_t bytes_spilled() const noexcept {
    return bytes_spilled_;
  }

  /// Deep structural check (DESIGN.md §10): geometry consistency (block
  /// count vs segment directory), residency accounting, and — in budget
  /// mode — every spill-segment header (magic, version, index, stride,
  /// block capacity) re-read from its mapping.  Throws ModelError naming
  /// the violated invariant.  Wrapped in MCP_CHECKED_ONLY at solver
  /// boundaries; callable directly from tests in any build.
  void validate() const;

 private:
  friend struct SpillArenaTestAccess;  ///< corruption injection (tests)

  struct Segment {
    std::uint64_t* data = nullptr;        ///< block storage (heap or mmap)
    std::unique_ptr<std::uint64_t[]> heap;  ///< owner in heap mode
    void* map = nullptr;                  ///< mmap base (header page) or null
    std::size_t map_bytes = 0;
    mutable bool resident = true;
    mutable std::uint64_t last_touch = 0;
  };

  void add_segment();
  void fault_in(const Segment& seg) const;
  void evict(const Segment& seg) const;
  /// Evicts least-recently-touched resident segments until the budget holds,
  /// never touching `keep` (the append/fault target).
  void enforce_budget(const Segment* keep) const;
  void charge(std::size_t bytes) const;

  std::size_t stride_;
  StorageBudget budget_;
  bool spilling_ = false;
  std::size_t log2_blocks_ = 0;       ///< blocks per segment = 1 << log2
  std::uint32_t block_mask_ = 0;
  std::size_t segment_data_bytes_ = 0;
  std::size_t segment_file_bytes_ = 0;  ///< page-aligned extent (budget mode)
  std::size_t num_blocks_ = 0;
  std::vector<Segment> segments_;
  int fd_ = -1;                       ///< unlinked spill file (budget mode)

  mutable std::uint64_t clock_ = 0;
  mutable std::size_t resident_bytes_ = 0;
  mutable std::size_t peak_resident_bytes_ = 0;
  mutable std::size_t bytes_spilled_ = 0;
};

/// Append-once store of variable-length `uint64_t` records (serialized PIF
/// layers).  Records are written in index order and read back individually;
/// with a budget they live only in the spill file.
class RecordLog {
 public:
  explicit RecordLog(StorageBudget budget = {});
  ~RecordLog();

  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Appends a record; returns its index.
  std::size_t append(const std::uint64_t* words, std::size_t count);
  /// Reads record `index` into `out` (replacing its contents).
  void read(std::size_t index, std::vector<std::uint64_t>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return offsets_.size(); }
  [[nodiscard]] std::size_t record_words(std::size_t index) const noexcept {
    return lengths_[index];
  }
  [[nodiscard]] std::size_t bytes_in_ram() const noexcept;
  [[nodiscard]] std::size_t bytes_spilled() const noexcept {
    return bytes_spilled_;
  }

 private:
  StorageBudget budget_;
  bool spilling_ = false;
  int fd_ = -1;
  std::size_t file_words_ = 0;
  std::vector<std::size_t> offsets_;  ///< record -> word offset (file mode)
  std::vector<std::size_t> lengths_;  ///< record -> word count
  std::vector<std::vector<std::uint64_t>> records_;  ///< RAM mode storage
  std::size_t bytes_spilled_ = 0;
};

}  // namespace mcp
