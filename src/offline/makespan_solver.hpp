// Optimal makespan solver — the bridge to Hassidim's model.
//
// The paper adopts total faults (FTF) as its objective but positions itself
// against Hassidim's makespan-minimization model; this solver computes the
// exact minimum makespan (completion time of the last request) within *our*
// model's rules — no request scheduling, only eviction choices — so the two
// objectives can be compared on the same instances (bench E15).
//
// Implementation: breadth-first search over timesteps on the same
// TransitionSystem as Algorithms 1 and 2.  A terminal state reached at the
// start of step t finished its last service at t-1 plus any residual fetch;
// the search stops once no future layer can beat the incumbent.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "offline/instance.hpp"
#include "offline/state_space.hpp"

namespace mcp {

struct MakespanOptions {
  VictimRule victim_rule = VictimRule::kAllPages;
  /// Abort (throw ModelError) if a layer exceeds this many states; 0 = off.
  std::size_t max_layer_width = 0;
};

struct MakespanResult {
  Time min_makespan = 0;
  std::size_t states_expanded = 0;
  std::size_t peak_layer_width = 0;
};

/// Exact minimum makespan over honest eviction schedules (disjoint inputs).
[[nodiscard]] MakespanResult solve_min_makespan(
    const OfflineInstance& instance, const MakespanOptions& options = {});

}  // namespace mcp
