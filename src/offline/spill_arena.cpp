#include "offline/spill_arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "core/error.hpp"
#include "core/sentry.hpp"

namespace mcp {

namespace {

constexpr std::uint64_t kSegmentMagic = 0x6d63705f73706c6cULL;  // "mcp_spll"
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kHeaderBytes = 4096;  ///< page-aligned data extents
constexpr std::size_t kDefaultSegmentBytes = std::size_t{1} << 20;

/// On-file header preceding each spill segment's data extent.  Written once
/// when the segment is created; `SpillArena::validate` re-reads it through
/// the mapping so silent file corruption (or a stride mismatch after a bad
/// resume) fails loudly under MCP_CHECKED.
struct SegmentHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t index;
  std::uint64_t stride;
  std::uint64_t block_capacity;
  std::uint64_t data_bytes;
};
static_assert(sizeof(SegmentHeader) <= kHeaderBytes);

[[noreturn]] void throw_errno(const char* what) {
  std::ostringstream os;
  os << "SpillArena: " << what << " failed: " << std::strerror(errno);
  throw InputError(os.str());
}

/// Creates an unlinked temporary file in `dir` (or TMPDIR / /tmp): the file
/// vanishes with the process — including on SIGKILL — so spill storage can
/// never leak onto disk.  Checkpoints therefore re-embed spilled data
/// instead of referencing the spill file.
int open_unlinked_temp(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* env = std::getenv("TMPDIR");
    base = (env != nullptr && *env != '\0') ? env : "/tmp";
  }
  std::string tmpl = base + "/mcp-spill-XXXXXX";
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) throw_errno("mkstemp");
  if (::unlink(tmpl.c_str()) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("unlink");
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpillArena

SpillArena::SpillArena(std::size_t stride, StorageBudget budget)
    : stride_(stride), budget_(std::move(budget)) {
  MCP_REQUIRE(stride_ > 0, "SpillArena stride must be positive");
  spilling_ = budget_.active();
  std::size_t seg_bytes =
      budget_.segment_bytes != 0 ? budget_.segment_bytes : kDefaultSegmentBytes;
  // Blocks per segment is the largest power of two whose data fits, so a
  // block id splits into (segment, offset) with a shift and a mask and a
  // block never straddles segments.
  const std::size_t block_bytes = stride_ * sizeof(std::uint64_t);
  std::size_t blocks = std::max<std::size_t>(seg_bytes / block_bytes, 1);
  log2_blocks_ = static_cast<std::size_t>(std::bit_width(blocks) - 1);
  block_mask_ = static_cast<std::uint32_t>((std::size_t{1} << log2_blocks_) - 1);
  segment_data_bytes_ = (std::size_t{1} << log2_blocks_) * block_bytes;
  if (spilling_) {
    MCP_REQUIRE(budget_.ram_bytes >= 2 * segment_data_bytes_,
                "StorageBudget.ram_bytes below two segments; raise the "
                "budget or shrink segment_bytes");
    // Each segment's file extent (header + data) is rounded up to a page so
    // every segment's mmap offset stays page-aligned.
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    segment_file_bytes_ =
        (kHeaderBytes + segment_data_bytes_ + page - 1) / page * page;
    fd_ = open_unlinked_temp(budget_.dir);
  }
}

SpillArena::~SpillArena() {
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) ::munmap(seg.map, seg.map_bytes);
  }
  if (fd_ >= 0) ::close(fd_);
}

void SpillArena::reserve(std::size_t blocks) {
  AllocAllow allow;
  segments_.reserve((blocks >> log2_blocks_) + 1);
}

void SpillArena::charge(std::size_t bytes) const {
  resident_bytes_ += bytes;
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
}

void SpillArena::add_segment() {
  AllocAllow allow;
  Segment seg;
  if (!spilling_) {
    const std::size_t words = segment_data_bytes_ / sizeof(std::uint64_t);
    seg.heap = std::make_unique<std::uint64_t[]>(words);
    seg.data = seg.heap.get();
  } else {
    const std::uint32_t index = static_cast<std::uint32_t>(segments_.size());
    const std::size_t map_bytes = segment_file_bytes_;
    const off_t offset = static_cast<off_t>(index) * static_cast<off_t>(map_bytes);
    if (::ftruncate(fd_, offset + static_cast<off_t>(map_bytes)) != 0)
      throw_errno("ftruncate");
    void* map = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd_, offset);
    if (map == MAP_FAILED) throw_errno("mmap");
    SegmentHeader header{};
    header.magic = kSegmentMagic;
    header.version = kSegmentVersion;
    header.index = index;
    header.stride = stride_;
    header.block_capacity = std::uint64_t{1} << log2_blocks_;
    header.data_bytes = segment_data_bytes_;
    std::memcpy(map, &header, sizeof(header));
    seg.map = map;
    seg.map_bytes = map_bytes;
    seg.data = reinterpret_cast<std::uint64_t*>(static_cast<char*>(map) +
                                                kHeaderBytes);
  }
  seg.resident = true;
  seg.last_touch = ++clock_;
  segments_.push_back(std::move(seg));
  charge(segment_data_bytes_);
  if (spilling_) enforce_budget(&segments_.back());
}

std::uint32_t SpillArena::append(const std::uint64_t* words) {
  const std::size_t seg_index = num_blocks_ >> log2_blocks_;
  if (seg_index == segments_.size()) add_segment();
  Segment& seg = segments_[seg_index];
  if (spilling_) {
    if (!seg.resident) fault_in(seg);
    seg.last_touch = ++clock_;
  }
  const std::size_t slot = num_blocks_ & block_mask_;
  std::memcpy(seg.data + slot * stride_, words,
              stride_ * sizeof(std::uint64_t));
  return static_cast<std::uint32_t>(num_blocks_++);
}

void SpillArena::fault_in(const Segment& seg) const {
  // The MAP_SHARED mapping is still valid after eviction; marking the
  // segment resident and re-charging the budget is pure accounting — the
  // kernel reloads the madvise'd pages from the spill file on first touch.
  seg.resident = true;
  charge(segment_data_bytes_);
  enforce_budget(&seg);
}

void SpillArena::evict(const Segment& seg) const {
  // MS_SYNC guarantees the data extent is durably in the file before the
  // pages are dropped; MADV_DONTNEED releases the RAM without disturbing
  // the mapping.
  if (::msync(seg.map, seg.map_bytes, MS_SYNC) != 0) throw_errno("msync");
  if (::madvise(seg.map, seg.map_bytes, MADV_DONTNEED) != 0)
    throw_errno("madvise");
  seg.resident = false;
  resident_bytes_ -= segment_data_bytes_;
  bytes_spilled_ += segment_data_bytes_;
}

void SpillArena::enforce_budget(const Segment* keep) const {
  while (resident_bytes_ > budget_.ram_bytes) {
    const Segment* victim = nullptr;
    for (const Segment& seg : segments_) {
      if (!seg.resident || &seg == keep) continue;
      if (victim == nullptr || seg.last_touch < victim->last_touch)
        victim = &seg;
    }
    if (victim == nullptr) break;  // only `keep` is resident: floor reached
    evict(*victim);
  }
}

void SpillArena::validate() const {
  const std::size_t expect_segments =
      (num_blocks_ + (std::size_t{1} << log2_blocks_) - 1) >> log2_blocks_;
  MCP_ASSERT_MSG(segments_.size() == expect_segments,
                 "segment directory size does not match block count");
  std::size_t resident = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    MCP_ASSERT_MSG(seg.data != nullptr, "segment has no storage");
    if (seg.resident) resident += segment_data_bytes_;
    if (!spilling_) {
      MCP_ASSERT_MSG(seg.resident, "heap segment marked non-resident");
      continue;
    }
    // Re-read the on-file header through the shared mapping; any mismatch
    // means the spill file was corrupted or the arena geometry drifted.
    SegmentHeader header{};
    std::memcpy(&header, seg.map, sizeof(header));
    std::ostringstream os;
    os << "spill segment " << i << " header";
    const std::string where = os.str();
    MCP_ASSERT_MSG(header.magic == kSegmentMagic, where + ": bad magic");
    MCP_ASSERT_MSG(header.version == kSegmentVersion, where + ": bad version");
    MCP_ASSERT_MSG(header.index == i, where + ": index mismatch");
    MCP_ASSERT_MSG(header.stride == stride_, where + ": stride mismatch");
    MCP_ASSERT_MSG(header.block_capacity == (std::uint64_t{1} << log2_blocks_),
                   where + ": block capacity mismatch");
    MCP_ASSERT_MSG(header.data_bytes == segment_data_bytes_,
                   where + ": data size mismatch");
  }
  MCP_ASSERT_MSG(resident == resident_bytes_,
                 "resident-byte accounting out of sync");
  MCP_ASSERT_MSG(!spilling_ || resident_bytes_ <=
                     std::max(budget_.ram_bytes, 2 * segment_data_bytes_),
                 "resident bytes exceed the storage budget");
}

// ---------------------------------------------------------------------------
// RecordLog

RecordLog::RecordLog(StorageBudget budget) : budget_(std::move(budget)) {
  spilling_ = budget_.active();
  if (spilling_) fd_ = open_unlinked_temp(budget_.dir);
}

RecordLog::~RecordLog() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t RecordLog::append(const std::uint64_t* words, std::size_t count) {
  AllocAllow allow;
  const std::size_t index = offsets_.size();
  if (!spilling_) {
    offsets_.push_back(index);
    lengths_.push_back(count);
    records_.emplace_back(words, words + count);
    return index;
  }
  const std::size_t bytes = count * sizeof(std::uint64_t);
  const off_t offset =
      static_cast<off_t>(file_words_) * static_cast<off_t>(sizeof(std::uint64_t));
  std::size_t written = 0;
  while (written < bytes) {
    const ssize_t n =
        ::pwrite(fd_, reinterpret_cast<const char*>(words) + written,
                 bytes - written, offset + static_cast<off_t>(written));
    if (n < 0) throw_errno("pwrite");
    written += static_cast<std::size_t>(n);
  }
  offsets_.push_back(file_words_);
  lengths_.push_back(count);
  file_words_ += count;
  bytes_spilled_ += bytes;
  return index;
}

void RecordLog::read(std::size_t index, std::vector<std::uint64_t>& out) const {
  MCP_ASSERT_MSG(index < offsets_.size(), "RecordLog record index out of range");
  const std::size_t count = lengths_[index];
  out.resize(count);
  if (!spilling_) {
    const std::vector<std::uint64_t>& rec = records_[index];
    std::copy(rec.begin(), rec.end(), out.begin());
    return;
  }
  const std::size_t bytes = count * sizeof(std::uint64_t);
  const off_t offset = static_cast<off_t>(offsets_[index]) *
                       static_cast<off_t>(sizeof(std::uint64_t));
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::pread(fd_, reinterpret_cast<char*>(out.data()) + got,
                              bytes - got, offset + static_cast<off_t>(got));
    if (n < 0) throw_errno("pread");
    MCP_ASSERT_MSG(n > 0, "RecordLog spill file truncated");
    got += static_cast<std::size_t>(n);
  }
}

std::size_t RecordLog::bytes_in_ram() const noexcept {
  if (spilling_) return offsets_.size() * 2 * sizeof(std::size_t);
  std::size_t total = 0;
  for (const std::vector<std::uint64_t>& rec : records_)
    total += rec.size() * sizeof(std::uint64_t);
  return total;
}

}  // namespace mcp
