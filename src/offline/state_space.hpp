// The offline search state space shared by Algorithm 1 (FTF), Algorithm 2
// (PIF) and the Theorem-5 restricted search.
//
// A state captures the system between timesteps: the cache contents
// (including in-flight pages), each core's next request index, and how many
// more steps each core stays blocked by its current fetch.  One expansion =
// one timestep: cores are processed in logical order (lower id first, as in
// the online model — an eviction by core 0 is visible to core 2 within the
// same step), and every fault branches over the admissible victims.
//
// The searches are restricted to *honest* schedules (evict exactly one page
// per fault, and only when the cache is full).  Theorem 4 of the paper shows
// this loses no optimality for FTF on disjoint inputs; for PIF it is a
// documented restriction (see DESIGN.md).
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "offline/instance.hpp"

namespace mcp {

struct OfflineState {
  std::vector<PageId> cache;        ///< sorted resident pages (present + in flight)
  std::vector<std::uint32_t> pos;   ///< next request index per core
  std::vector<std::uint32_t> fetch; ///< remaining blocked steps per core

  bool operator==(const OfflineState&) const = default;
};

struct OfflineStateHash {
  std::size_t operator()(const OfflineState& s) const noexcept;
};

/// Everything one timestep did, for one branch of victim choices.
struct StepOutcome {
  OfflineState next;
  std::uint32_t faulted_cores = 0;   ///< bitmask of cores that faulted
  std::vector<PageId> evictions;     ///< victims, in faulting-core order
                                     ///< (kInvalidPage for no-eviction faults)
  [[nodiscard]] Count fault_count() const noexcept {
    return static_cast<Count>(std::popcount(faulted_cores));
  }
};

/// Which search implementation a solver runs.
enum class OfflineEngine {
  /// Packed bitset states interned to dense ids, cache-friendly kernels
  /// (packed_space.hpp) — the default.  Falls back to kReference when the
  /// instance exceeds the packed encoding (PackedTransitionSystem::supports).
  kPacked,
  /// The retained reference implementation over heap-backed OfflineState
  /// nodes — the differential-testing oracle.
  kReference,
};

/// Which victims a fault may choose from.
enum class VictimRule {
  kAllPages,          ///< any present (non-reserved) page — the full optimum
  kFitfPerSequence,   ///< per Theorem 5: for each core c, only the page of
                      ///< R_c whose next request is furthest in R_c
};

class TransitionSystem {
 public:
  TransitionSystem(const OfflineInstance& instance, VictimRule rule);

  [[nodiscard]] OfflineState initial() const;
  /// All requests served (in-flight tails don't matter for fault counts).
  [[nodiscard]] bool is_terminal(const OfflineState& state) const;
  /// Invokes `emit` once per admissible outcome of the next timestep.
  void expand(const OfflineState& state,
              const std::function<void(StepOutcome&&)>& emit) const;

  [[nodiscard]] std::size_t num_cores() const noexcept { return p_; }
  [[nodiscard]] const OfflineInstance& instance() const noexcept { return *instance_; }

  /// Next request index >= `from` of `page` within its owner's sequence;
  /// UINT32_MAX if never again.  Exposed for tests.
  [[nodiscard]] std::uint32_t next_occurrence(PageId page, std::uint32_t from) const;
  [[nodiscard]] CoreId owner_of(PageId page) const;

 private:
  struct StepScratch;
  void expand_core(std::size_t core, StepScratch& scratch,
                   const std::function<void(StepOutcome&&)>& emit) const;
  void emit_outcome(StepScratch& scratch,
                    const std::function<void(StepOutcome&&)>& emit) const;
  [[nodiscard]] std::vector<PageId> victim_candidates(
      const StepScratch& scratch, CoreId faulting_core) const;

  const OfflineInstance* instance_;
  VictimRule rule_;
  std::size_t p_;
  PageId universe_size_ = 0;
  std::vector<CoreId> owner_;                         // page -> core
  std::vector<std::vector<std::uint32_t>> occurrences_;  // page -> indices in owner's seq
};

}  // namespace mcp
