#include "offline/packed_space.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "core/error.hpp"

namespace mcp {

namespace {

constexpr std::uint32_t kNever = std::numeric_limits<std::uint32_t>::max();

using detail::clear_bit;
using detail::set_bit;
using detail::test_bit;

}  // namespace

bool PackedTransitionSystem::supports(const OfflineInstance& instance) {
  if (instance.requests.num_cores() == 0 ||
      instance.requests.num_cores() > kMaxCores) {
    return false;
  }
  if (instance.requests.page_bound() > kMaxUniverse) return false;
  if (instance.tau > kMaxTau) return false;
  for (const RequestSequence& seq : instance.requests) {
    if (seq.size() > kMaxPosition) return false;
  }
  return true;
}

PackedTransitionSystem::PackedTransitionSystem(const OfflineInstance& instance,
                                               VictimRule rule)
    : instance_(&instance),
      rule_(rule),
      p_(instance.requests.num_cores()),
      tau_(static_cast<std::uint32_t>(instance.tau)),
      cache_size_(instance.cache_size) {
  instance.validate();
  MCP_REQUIRE(supports(instance),
              "PackedTransitionSystem: instance exceeds the packed encoding "
              "(universe <= 128 pages, tau <= 255, n < 2^24, p <= 32)");
  universe_size_ = instance.requests.page_bound();
  cache_words_ = std::max<std::size_t>(1, (universe_size_ + 63) / 64);
  stride_ = cache_words_ + (p_ + 1) / 2;
  owner_ = instance.requests.owner_map(universe_size_);
  occurrences_.resize(universe_size_);
  seqs_.reserve(p_);
  for (CoreId core = 0; core < p_; ++core) {
    const RequestSequence& seq = instance.requests.sequence(core);
    seqs_.push_back(&seq);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      occurrences_[seq[i]].push_back(static_cast<std::uint32_t>(i));
    }
  }
}

void PackedTransitionSystem::initial(std::uint64_t* out) const {
  std::fill(out, out + stride_, 0);
}

bool PackedTransitionSystem::is_terminal(const std::uint64_t* state) const {
  for (CoreId j = 0; j < p_; ++j) {
    if (position(state, j) < seqs_[j]->size()) return false;
  }
  return true;
}

std::uint32_t PackedTransitionSystem::next_occurrence(PageId page,
                                                      std::uint32_t from) const {
  const auto& occ = occurrences_[page];
  const auto it = std::lower_bound(occ.begin(), occ.end(), from);
  return it == occ.end() ? kNever : *it;
}

void PackedTransitionSystem::pack(const OfflineState& state,
                                  std::uint64_t* out) const {
  std::fill(out, out + stride_, 0);
  for (PageId page : state.cache) {
    MCP_REQUIRE(page < universe_size_, "pack: page outside the universe");
    set_bit(out, page);
  }
  MCP_REQUIRE(state.pos.size() == p_ && state.fetch.size() == p_,
              "pack: core-vector sizes mismatch the instance");
  for (CoreId j = 0; j < p_; ++j) {
    MCP_REQUIRE(state.pos[j] <= kMaxPosition && state.fetch[j] <= 0xFFu,
                "pack: position/fetch out of encoding range");
    set_core_word(out, cache_words_, j, (state.pos[j] << 8) | state.fetch[j]);
  }
}

OfflineState PackedTransitionSystem::unpack(const std::uint64_t* state) const {
  OfflineState out;
  for (std::size_t w = 0; w < cache_words_; ++w) {
    std::uint64_t bits = state[w];
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      out.cache.push_back(static_cast<PageId>(w * 64 + b));
    }
  }
  out.pos.resize(p_);
  out.fetch.resize(p_);
  for (CoreId j = 0; j < p_; ++j) {
    out.pos[j] = position(state, j);
    out.fetch[j] = fetch_left(state, j);
  }
  return out;
}

void PackedTransitionSystem::victim_bits(const StepScratch& scratch,
                                         std::uint64_t* out) const {
  for (std::size_t w = 0; w < cache_words_; ++w) {
    out[w] = scratch.work[w] & ~scratch.locked[w];
  }
  if (rule_ == VictimRule::kAllPages) return;

  // Theorem 5: keep, for each core c, only the evictable page of R_c whose
  // next request in R_c is furthest (never-again = infinitely far).
  std::array<PageId, kMaxCores> best_page;
  std::array<std::uint64_t, kMaxCores> best_dist;
  best_page.fill(kInvalidPage);
  for (std::size_t w = 0; w < cache_words_; ++w) {
    std::uint64_t bits = out[w];
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const PageId page = static_cast<PageId>(w * 64 + b);
      const CoreId c = owner_[page];
      const std::uint32_t next =
          next_occurrence(page, position(scratch.work.data(), c));
      const std::uint64_t dist =
          next == kNever ? std::numeric_limits<std::uint64_t>::max() : next;
      if (best_page[c] == kInvalidPage || dist > best_dist[c]) {
        best_page[c] = page;
        best_dist[c] = dist;
      }
    }
  }
  std::fill(out, out + cache_words_, 0);
  for (CoreId c = 0; c < p_; ++c) {
    if (best_page[c] != kInvalidPage) set_bit(out, best_page[c]);
  }
}

}  // namespace mcp
