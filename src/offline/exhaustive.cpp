#include "offline/exhaustive.hpp"

#include <algorithm>
#include <functional>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "offline/replay.hpp"

namespace mcp {

namespace {

/// Thrown to stop a probe run at the first undecided eviction.
struct ProbeAbort {
  std::vector<PageId> candidates;
};

/// Thrown by pruning observers when the branch cannot improve / succeed.
struct PruneAbort {};

/// Replays `prefix` victims at full-cache faults; at the first fault beyond
/// the prefix, reports the candidate victims via ProbeAbort.
class ProbeStrategy final : public CacheStrategy {
 public:
  explicit ProbeStrategy(const std::vector<PageId>& prefix) : prefix_(&prefix) {}

  void attach(const SimConfig& config, std::size_t /*num_cores*/,
              const RequestSet* /*requests*/) override {
    cache_size_ = config.cache_size;
    next_ = 0;
  }
  void on_hit(const AccessContext& /*ctx*/) override {}
  void on_fault(const AccessContext& /*ctx*/, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override {
    if (!needs_cell || cache.occupied() < cache_size_) return;
    if (next_ < prefix_->size()) {
      evictions.push_back((*prefix_)[next_++]);
      return;
    }
    throw ProbeAbort{cache.present_pages()};
  }
  [[nodiscard]] std::string name() const override { return "PROBE"; }

 private:
  const std::vector<PageId>* prefix_;
  std::size_t next_ = 0;
  std::size_t cache_size_ = 0;
};

/// Aborts a run once the running fault total reaches `limit` (the branch
/// cannot beat the incumbent).
class FaultBudgetObserver final : public SimObserver {
 public:
  explicit FaultBudgetObserver(Count limit) : limit_(limit) {}
  void on_fault(const AccessContext& /*ctx*/) override {
    if (++faults_ >= limit_) throw PruneAbort{};
  }

 private:
  Count limit_;
  Count faults_ = 0;
};

/// Aborts a run once any core exceeds its PIF bound before the deadline.
class BoundsObserver final : public SimObserver {
 public:
  BoundsObserver(const std::vector<Count>& bounds, Time deadline)
      : bounds_(&bounds), deadline_(deadline),
        faults_(bounds.size(), 0) {}
  void on_fault(const AccessContext& ctx) override {
    if (ctx.now >= deadline_) return;  // faults at/after the deadline are free
    if (++faults_[ctx.core] > (*bounds_)[ctx.core]) throw PruneAbort{};
  }

 private:
  const std::vector<Count>* bounds_;
  Time deadline_;
  std::vector<Count> faults_;
};

void check_run_budget(std::size_t runs, std::size_t max_runs) {
  if (max_runs != 0 && runs > max_runs) {
    throw ModelError("exhaustive search: simulator run budget exceeded");
  }
}

}  // namespace

ExhaustiveFtfResult exhaustive_ftf(const OfflineInstance& instance,
                                   std::size_t max_runs) {
  instance.validate();
  ExhaustiveFtfResult result;
  result.min_faults = ~Count{0};

  std::vector<PageId> prefix;
  // Explicit DFS over decision prefixes.
  const std::function<void()> dfs = [&]() {
    ++result.simulator_runs;
    check_run_budget(result.simulator_runs, max_runs);
    ProbeStrategy strategy(prefix);
    FaultBudgetObserver budget(result.min_faults);
    Simulator sim(instance.sim_config());
    sim.add_observer(&budget);
    try {
      const RunStats stats = sim.run(instance.requests, strategy);
      // Complete run: every eviction was decided by the prefix.
      if (stats.total_faults() < result.min_faults) {
        result.min_faults = stats.total_faults();
        result.best_schedule = prefix;
      }
    } catch (const ProbeAbort& probe) {
      for (PageId victim : probe.candidates) {
        prefix.push_back(victim);
        dfs();
        prefix.pop_back();
      }
    } catch (const PruneAbort&) {
      // Branch cannot beat the incumbent; drop it.
    }
  };
  dfs();
  MCP_REQUIRE(result.min_faults != ~Count{0},
              "exhaustive_ftf: no complete schedule found");
  return result;
}

ExhaustivePifResult exhaustive_pif(const PifInstance& instance,
                                   std::size_t max_runs) {
  instance.validate();
  ExhaustivePifResult result;

  std::vector<PageId> prefix;
  const std::function<void()> dfs = [&]() {
    if (result.feasible) return;  // already decided
    ++result.simulator_runs;
    check_run_budget(result.simulator_runs, max_runs);
    ProbeStrategy strategy(prefix);
    BoundsObserver bounds(instance.bounds, instance.deadline);
    Simulator sim(instance.base.sim_config());
    sim.add_observer(&bounds);
    try {
      const RunStats stats = sim.run(instance.base.requests, strategy);
      if (stats.within_bounds_at(instance.deadline, instance.bounds)) {
        result.feasible = true;
      }
    } catch (const ProbeAbort& probe) {
      for (PageId victim : probe.candidates) {
        if (result.feasible) return;
        prefix.push_back(victim);
        dfs();
        prefix.pop_back();
      }
    } catch (const PruneAbort&) {
      // Bound blown before the deadline: infeasible branch.
    }
  };
  dfs();
  return result;
}

}  // namespace mcp
