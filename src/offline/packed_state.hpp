// Interned packed states for the offline search engine.
//
// The offline searches (ftf_solver, pif_solver) explore state spaces whose
// nodes were heap-heavy `OfflineState` objects — three vectors per node,
// hashed field by field, owned by `unordered_map` nodes.  The packed engine
// instead encodes a state as a fixed-width block of `uint64_t` words (cache
// bitset + one `uint32_t` per core, see packed_space.hpp for the layout) and
// interns every block in a StateInterner: an arena of contiguous blocks
// addressed by dense `uint32_t` ids, deduplicated through an open-addressing
// hash table.  Search structures (distances, parents, bucket queues, layer
// fronts) become flat arrays indexed by id instead of pointer-chasing maps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace mcp {

namespace detail {

/// splitmix64 finalizer — cheap, well-mixed, stable across platforms.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

struct InternerTestAccess;  // corruption-injection backdoor (tests only)

/// Arena-backed deduplicating store of fixed-stride `uint64_t` blocks.
///
/// Ids are dense (0, 1, 2, ... in first-interned order), so per-state search
/// metadata lives in plain vectors indexed by id.  Pointers returned by
/// state() are invalidated by the next intern() (the arena may grow); copy
/// the words out before interning successors.
class StateInterner {
 public:
  static constexpr std::uint32_t kNoState = 0xFFFFFFFFu;

  /// `stride`: words per state (PackedTransitionSystem::state_words()).
  explicit StateInterner(std::size_t stride);

  /// Interns the `stride()`-word block at `words`; returns (id, inserted).
  /// Header-inline: this is the innermost call of both offline solvers (once
  /// per emitted outcome), and inlining it into the emission lambdas is worth
  /// several percent of total solve time.
  std::pair<std::uint32_t, bool> intern(const std::uint64_t* words) {
    // Resize before probing so the insert below always finds a free slot.
    if (static_cast<std::size_t>(count_) * 10 >= table_.size() * 7) {
      grow_table();
    }
    const std::uint64_t hash = hash_block(words);
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    while (table_[slot] != kNoState) {
      if (hashes_[table_[slot]] == hash && block_equal(table_[slot], words)) {
        return {table_[slot], false};
      }
      slot = (slot + 1) & mask;
    }
    return insert_new(words, hash, slot);
  }

  /// The interned block of `id` — valid until the next intern().
  [[nodiscard]] const std::uint64_t* state(std::uint32_t id) const noexcept {
    return arena_.data() + static_cast<std::size_t>(id) * stride_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// Pre-sizes arena and table for `states` states (optional).
  void reserve(std::size_t states);

  /// Deep structural invariant check (the checked-build validator, DESIGN.md
  /// §10): live-id density (arena/hash-array sizes match count), stored-hash
  /// consistency (every per-id hash re-derives from its block), table
  /// integrity (every live id claims exactly one slot), and no duplicate
  /// packed states (every id's probe chain finds the id itself first).
  /// Throws ModelError naming the violated invariant.  O(states · stride);
  /// invoked at solver boundaries under MCP_CHECKED and callable directly
  /// from tests in any build.
  void validate() const;

 private:
  friend struct InternerTestAccess;  ///< corruption injection (test_sentry)
  [[nodiscard]] std::uint64_t hash_block(
      const std::uint64_t* words) const noexcept {
    std::uint64_t h = 0x12345678abcdef01ULL;
    for (std::size_t w = 0; w < stride_; ++w) h = detail::mix64(h ^ words[w]);
    return h;
  }
  [[nodiscard]] bool block_equal(std::uint32_t id,
                                 const std::uint64_t* words) const noexcept {
    return std::memcmp(state(id), words, stride_ * sizeof(std::uint64_t)) == 0;
  }
  /// Cold path of intern(): append to the arena and claim `slot`.
  std::pair<std::uint32_t, bool> insert_new(const std::uint64_t* words,
                                            std::uint64_t hash,
                                            std::size_t slot);
  void rehash(std::size_t target);
  void grow_table();

  std::size_t stride_;
  std::vector<std::uint64_t> arena_;   ///< count_ * stride_ words
  std::vector<std::uint64_t> hashes_;  ///< per-id hash (cheap table growth)
  std::vector<std::uint32_t> table_;   ///< open addressing; power-of-two size
  std::uint32_t count_ = 0;
};

}  // namespace mcp
