// Interned packed states for the offline search engine.
//
// The offline searches (ftf_solver, pif_solver) explore state spaces whose
// nodes were heap-heavy `OfflineState` objects — three vectors per node,
// hashed field by field, owned by `unordered_map` nodes.  The packed engine
// instead encodes a state as a fixed-width block of `uint64_t` words (cache
// bitset + one `uint32_t` per core, see packed_space.hpp for the layout) and
// interns every block in a StateInterner: an arena of contiguous blocks
// addressed by dense `uint32_t` ids, deduplicated through an open-addressing
// hash table.  Search structures (distances, parents, bucket queues, layer
// fronts) become flat arrays indexed by id instead of pointer-chasing maps.
//
// The arena is a `SpillArena` (spill_arena.hpp): segmented, so block
// pointers are stable across interns, and — given a `StorageBudget` —
// file-backed, so the state store can exceed RAM (cold segments written
// back and reloaded on demand).  The hash table and per-id hashes always
// stay in RAM; only the state words spill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/sentry.hpp"
#include "offline/spill_arena.hpp"

namespace mcp {

namespace detail {

/// splitmix64 finalizer — cheap, well-mixed, stable across platforms.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

struct InternerTestAccess;  // corruption-injection backdoor (tests only)

/// Arena-backed deduplicating store of fixed-stride `uint64_t` blocks.
///
/// Ids are dense (0, 1, 2, ... in first-interned order), so per-state search
/// metadata lives in plain vectors indexed by id.  Pointers returned by
/// state() are stable across intern() calls (segmented arena) — but under a
/// StorageBudget a later state()/intern() may evict the segment, so spilling
/// callers still copy words out before touching other blocks.
class StateInterner {
 public:
  static constexpr std::uint32_t kNoState = 0xFFFFFFFFu;

  /// `stride`: words per state (PackedTransitionSystem::state_words()).
  /// An active `budget` makes the arena file-backed (see SpillArena).
  explicit StateInterner(std::size_t stride, StorageBudget budget = {});

  /// Hash of a `stride`-word block — the function intern() uses.  Static so
  /// parallel expansion workers can pre-hash emissions against a frozen
  /// interner without touching it.
  [[nodiscard]] static std::uint64_t hash_words(const std::uint64_t* words,
                                                std::size_t stride) noexcept {
    std::uint64_t h = 0x12345678abcdef01ULL;
    for (std::size_t w = 0; w < stride; ++w) h = detail::mix64(h ^ words[w]);
    return h;
  }

  /// Interns the `stride()`-word block at `words`; returns (id, inserted).
  /// Header-inline: this is the innermost call of both offline solvers (once
  /// per emitted outcome), and inlining it into the emission lambdas is worth
  /// several percent of total solve time.
  std::pair<std::uint32_t, bool> intern(const std::uint64_t* words) {
    return intern_hashed(words, hash_words(words, stride_));
  }

  /// intern() with a caller-supplied hash_words() result — the merge phase
  /// of parallel expansion re-uses the hash its worker already computed.
  std::pair<std::uint32_t, bool> intern_hashed(const std::uint64_t* words,
                                               std::uint64_t hash) {
    // Resize before probing so the insert below always finds a free slot.
    if (static_cast<std::size_t>(count_) * 10 >= table_.size() * 7) {
      grow_table();
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    while (table_[slot] != kNoState) {
      if (hashes_[table_[slot]] == hash && block_equal(table_[slot], words)) {
        return {table_[slot], false};
      }
      slot = (slot + 1) & mask;
    }
    return insert_new(words, hash, slot);
  }

  /// intern_hashed() for a block the caller has proven absent — the merge
  /// phase of parallel expansion calls this for emissions the sharded dedup
  /// pass resolved as first occurrences (absent from the frozen table and
  /// not preceded by an equal emission in the wave).  Probes only for a
  /// free slot: no equality checks against occupants, so the expensive part
  /// of interning (hash + word compares) stays on the workers.  The checked
  /// build re-verifies absence.
  std::uint32_t insert_absent_hashed(const std::uint64_t* words,
                                     std::uint64_t hash) {
    MCP_CHECKED_ONLY(MCP_ASSERT_MSG(find(words, hash) == kNoState,
                                    "insert_absent_hashed: block present"));
    if (static_cast<std::size_t>(count_) * 10 >= table_.size() * 7) {
      grow_table();
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    while (table_[slot] != kNoState) slot = (slot + 1) & mask;
    return insert_new(words, hash, slot).first;
  }

  /// Read-only probe: the id of `words` if already interned, else kNoState.
  /// Never mutates the interner, so concurrent find() calls against a frozen
  /// interner are safe when the arena is not spilling (see SpillArena).
  [[nodiscard]] std::uint32_t find(const std::uint64_t* words,
                                   std::uint64_t hash) const noexcept {
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    while (table_[slot] != kNoState) {
      if (hashes_[table_[slot]] == hash && block_equal(table_[slot], words)) {
        return table_[slot];
      }
      slot = (slot + 1) & mask;
    }
    return kNoState;
  }

  /// The interned block of `id` — stable across interns; under a budget,
  /// valid until the next state()/intern() touches a different segment.
  [[nodiscard]] const std::uint64_t* state(std::uint32_t id) const noexcept {
    return arena_.block(id);
  }

  /// The stored hash_words() value of `id` (checkpoint serialization).
  [[nodiscard]] std::uint64_t stored_hash(std::uint32_t id) const noexcept {
    return hashes_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// Pre-sizes arena and table for `states` states (optional).  Wired from
  /// FtfOptions/PifOptions::expected_states: eliminates the early
  /// table-doubling churn in guarded hot loops.
  void reserve(std::size_t states);

  // -- capacity accounting (max_states diagnostics, BENCH_OFFLINE series) --

  /// Logical state bytes (count * stride * 8), spilled or not.
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return static_cast<std::size_t>(count_) * stride_ * sizeof(std::uint64_t);
  }
  /// Resident bytes: arena segments in RAM plus hashes plus table.
  [[nodiscard]] std::size_t bytes_in_ram() const noexcept {
    return arena_.bytes_in_ram() + hashes_.capacity() * sizeof(std::uint64_t) +
           table_.capacity() * sizeof(std::uint32_t);
  }
  /// High-water mark of the arena's resident bytes plus side arrays.
  [[nodiscard]] std::size_t peak_bytes_in_ram() const noexcept {
    return arena_.peak_bytes_in_ram() +
           hashes_.capacity() * sizeof(std::uint64_t) +
           table_.capacity() * sizeof(std::uint32_t);
  }
  /// Cumulative bytes the arena wrote back to its spill file.
  [[nodiscard]] std::size_t bytes_spilled() const noexcept {
    return arena_.bytes_spilled();
  }
  [[nodiscard]] bool spilling() const noexcept { return arena_.spilling(); }
  /// Open-addressing load factor (count / table slots).
  [[nodiscard]] double load_factor() const noexcept {
    return static_cast<double>(count_) / static_cast<double>(table_.size());
  }

  /// Deep structural invariant check (the checked-build validator, DESIGN.md
  /// §10): live-id density (arena/hash-array sizes match count), stored-hash
  /// consistency (every per-id hash re-derives from its block), table
  /// integrity (every live id claims exactly one slot), no duplicate packed
  /// states (every id's probe chain finds the id itself first), and the
  /// arena's own segment/header validation.  Throws ModelError naming the
  /// violated invariant.  O(states · stride); invoked at solver boundaries
  /// under MCP_CHECKED and callable directly from tests in any build.
  void validate() const;

 private:
  friend struct InternerTestAccess;  ///< corruption injection (test_sentry)
  [[nodiscard]] std::uint64_t hash_block(
      const std::uint64_t* words) const noexcept {
    return hash_words(words, stride_);
  }
  [[nodiscard]] bool block_equal(std::uint32_t id,
                                 const std::uint64_t* words) const noexcept {
    return std::memcmp(state(id), words, stride_ * sizeof(std::uint64_t)) == 0;
  }
  /// Cold path of intern(): append to the arena and claim `slot`.
  std::pair<std::uint32_t, bool> insert_new(const std::uint64_t* words,
                                            std::uint64_t hash,
                                            std::size_t slot);
  void rehash(std::size_t target);
  void grow_table();

  std::size_t stride_;
  SpillArena arena_;                   ///< count_ blocks of stride_ words
  std::vector<std::uint64_t> hashes_;  ///< per-id hash (cheap table growth)
  std::vector<std::uint32_t> table_;   ///< open addressing; power-of-two size
  std::uint32_t count_ = 0;
};

}  // namespace mcp
