// Offline problem instances (Section 5 of the paper).
//
// The offline algorithms assume a *disjoint* request set — the paper's
// Theorems 4 and 5 (honesty and FITF-within-a-sequence are WLOG for the
// optimum) are stated for disjoint sequences, and our searches rely on both
// reductions of the decision space.
#pragma once

#include <cstddef>
#include <vector>

#include "core/request.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"

namespace mcp {

/// Shared data of FTF / PIF instances.
struct OfflineInstance {
  RequestSet requests;
  std::size_t cache_size = 0;  ///< K
  Time tau = 0;                ///< fault penalty

  /// Throws ModelError unless the instance is well-formed (disjoint, K>0,
  /// at least one core).
  void validate() const;

  [[nodiscard]] SimConfig sim_config() const {
    SimConfig cfg;
    cfg.cache_size = cache_size;
    cfg.fault_penalty = tau;
    return cfg;
  }
};

/// A PARTIAL-INDIVIDUAL-FAULTS instance (Definition 2): can `base.requests`
/// be served so that each core i has faulted at most `bounds[i]` times on
/// requests issued before `deadline`?
struct PifInstance {
  OfflineInstance base;
  Time deadline = 0;
  std::vector<Count> bounds;

  void validate() const;
};

}  // namespace mcp
