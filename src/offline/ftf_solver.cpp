#include "offline/ftf_solver.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "core/sentry.hpp"
#include "offline/packed_space.hpp"
#include "offline/packed_state.hpp"

namespace mcp {

namespace {

[[noreturn]] void throw_state_limit(std::size_t expanded, std::size_t stored) {
  throw ModelError("solve_ftf: state limit exceeded (states_expanded=" +
                   std::to_string(expanded) +
                   ", states_stored=" + std::to_string(stored) + ")");
}

// ---------------------------------------------------------------------------
// Reference engine: binary-heap Dijkstra over heap-backed OfflineState nodes
// keyed in an unordered_map.  Retained as the differential-testing oracle for
// the packed engine below.
// ---------------------------------------------------------------------------

struct NodeInfo {
  Count dist = 0;
  // Parent pointer for schedule reconstruction (only when requested).
  const OfflineState* parent = nullptr;
  std::vector<PageId> step_evictions;
};

struct QueueEntry {
  Count dist;
  const OfflineState* state;
  bool operator>(const QueueEntry& other) const { return dist > other.dist; }
};

FtfResult solve_ftf_reference(const OfflineInstance& instance,
                              const FtfOptions& options) {
  const TransitionSystem system(instance, options.victim_rule);

  // Node ownership: the map's keys are the canonical state objects; queue
  // entries and parent pointers reference them (stable across rehashing —
  // unordered_map never moves its nodes).
  std::unordered_map<OfflineState, NodeInfo, OfflineStateHash> nodes;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;

  const OfflineState start = system.initial();
  nodes.emplace(start, NodeInfo{});
  queue.push(QueueEntry{0, &nodes.find(start)->first});

  FtfResult result;
  const OfflineState* goal = nullptr;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const auto it = nodes.find(*top.state);
    MCP_ASSERT(it != nodes.end());
    if (top.dist > it->second.dist) continue;  // stale entry
    if (system.is_terminal(*top.state)) {
      goal = top.state;
      result.min_faults = top.dist;
      break;
    }
    if (options.max_states != 0 && nodes.size() > options.max_states) {
      throw_state_limit(result.states_expanded, nodes.size());
    }
    ++result.states_expanded;

    system.expand(*top.state, [&](StepOutcome&& outcome) {
      const Count dist = top.dist + outcome.fault_count();
      auto [node_it, inserted] = nodes.try_emplace(std::move(outcome.next));
      if (!inserted && node_it->second.dist <= dist) return;
      node_it->second.dist = dist;
      if (options.build_schedule) {
        node_it->second.parent = top.state;
        node_it->second.step_evictions = std::move(outcome.evictions);
      }
      queue.push(QueueEntry{dist, &node_it->first});
    });
  }

  MCP_REQUIRE(goal != nullptr, "solve_ftf: no terminal state reachable");
  result.states_stored = nodes.size();

  if (options.build_schedule) {
    // Walk parents back to the start, collecting per-step eviction lists;
    // flatten in forward order.  Entries are per *fault*; steps without
    // faults contributed empty lists.
    std::vector<const std::vector<PageId>*> steps;
    for (const OfflineState* cur = goal; cur != nullptr;) {
      const NodeInfo& info = nodes.find(*cur)->second;
      if (info.parent == nullptr) break;
      steps.push_back(&info.step_evictions);
      cur = info.parent;
    }
    std::reverse(steps.begin(), steps.end());
    for (const auto* step : steps) {
      result.schedule.insert(result.schedule.end(), step->begin(), step->end());
    }
    MCP_ASSERT(result.schedule.size() == result.min_faults);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Packed engine: Dial's algorithm (bucket queue) over interned packed ids.
// One timestep costs 0..p faults, so distances are dense small integers and
// buckets replace the binary heap: O(1) push, monotone non-decreasing pops.
// All per-node metadata is flat vectors indexed by interned id.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

FtfResult solve_ftf_packed(const OfflineInstance& instance,
                           const FtfOptions& options) {
  const PackedTransitionSystem system(instance, options.victim_rule);
  StateInterner interner(system.state_words());
  interner.reserve(4096);
  PackedTransitionSystem::StepScratch scratch;

  std::vector<std::uint32_t> dist;      // id -> best known distance
  std::vector<std::uint32_t> parent;    // id -> predecessor id (schedule mode)
  std::vector<std::uint32_t> evict_off; // id -> offset into evict_pool
  std::vector<std::uint16_t> evict_len; // id -> eviction count of best step
  std::vector<PageId> evict_pool;       // append-only flat eviction storage
  const bool schedule = options.build_schedule;

  std::vector<std::uint64_t> start(system.state_words());
  system.initial(start.data());
  interner.intern(start.data());
  dist.push_back(0);
  if (schedule) {
    parent.push_back(StateInterner::kNoState);
    evict_off.push_back(0);
    evict_len.push_back(0);
  }

  std::vector<std::vector<std::uint32_t>> buckets(1);
  buckets[0].push_back(0);
  std::size_t pending = 1;

  FtfResult result;
  std::uint32_t goal = StateInterner::kNoState;

  for (std::uint32_t d = 0; pending > 0 && goal == StateInterner::kNoState;
       ++d) {
    MCP_ASSERT(d < buckets.size());
    // Zero-fault self-distance steps append to buckets[d] mid-iteration:
    // index, don't iterate.
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const std::uint32_t id = buckets[d][i];
      --pending;
      if (dist[id] != d) continue;  // stale entry
      if (system.is_terminal(interner.state(id))) {
        goal = id;
        result.min_faults = d;
        break;
      }
      if (options.max_states != 0 && interner.size() > options.max_states) {
        throw_state_limit(result.states_expanded, interner.size());
      }
      ++result.states_expanded;

      // Allocation sentry (FtfOptions::alloc_guard): every expansion after
      // the first (which warms the step scratch) runs guarded — only the
      // relaxation sink below, a declared amortized growth point, may
      // allocate; an allocation inside the expansion kernel itself throws.
      std::optional<AllocGuard> expand_guard;
      if (options.alloc_guard && result.states_expanded > 1) {
        expand_guard.emplace("ftf expansion kernel");
      }

      system.expand(interner.state(id), scratch,
                    [&](const PackedOutcome& outcome) {
        // Declared growth: the relaxation sink's flat arrays (interner
        // arena/table via intern(), distance/parent/eviction arrays, bucket
        // queue) all grow amortized as new states are discovered.
        AllocAllow allow;
        const std::uint32_t nd = d + static_cast<std::uint32_t>(outcome.fault_count());
        const auto [nid, inserted] = interner.intern(outcome.next);
        if (inserted) {
          dist.push_back(kUnreached);
          if (schedule) {
            parent.push_back(StateInterner::kNoState);
            evict_off.push_back(0);
            evict_len.push_back(0);
          }
        }
        if (dist[nid] <= nd) return;
        dist[nid] = nd;
        if (schedule) {
          parent[nid] = id;
          evict_off[nid] = static_cast<std::uint32_t>(evict_pool.size());
          evict_len[nid] = static_cast<std::uint16_t>(outcome.evictions.size());
          evict_pool.insert(evict_pool.end(), outcome.evictions.begin(),
                            outcome.evictions.end());
        }
        if (nd >= buckets.size()) buckets.resize(nd + 1);
        buckets[nd].push_back(nid);
        ++pending;
      });
    }
  }

  MCP_REQUIRE(goal != StateInterner::kNoState,
              "solve_ftf: no terminal state reachable");
  result.states_stored = interner.size();
  // Checked builds: the interner is structurally sound after the search.
  MCP_CHECKED_ONLY(interner.validate());

  if (schedule) {
    // Walk parent ids back to the start; flatten per-step eviction spans in
    // forward order.
    std::vector<std::uint32_t> chain;
    for (std::uint32_t cur = goal; parent[cur] != StateInterner::kNoState;
         cur = parent[cur]) {
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    for (std::uint32_t cur : chain) {
      const PageId* first = evict_pool.data() + evict_off[cur];
      result.schedule.insert(result.schedule.end(), first,
                             first + evict_len[cur]);
    }
    MCP_ASSERT(result.schedule.size() == result.min_faults);
  }
  return result;
}

}  // namespace

FtfResult solve_ftf(const OfflineInstance& instance, const FtfOptions& options) {
  if (options.engine == OfflineEngine::kPacked &&
      PackedTransitionSystem::supports(instance)) {
    return solve_ftf_packed(instance, options);
  }
  return solve_ftf_reference(instance, options);
}

}  // namespace mcp
