#include "offline/ftf_solver.hpp"

#include <time.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <memory>
#include <optional>
#include <queue>
#include <sstream>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "core/sentry.hpp"
#include "core/thread_pool.hpp"
#include "offline/packed_space.hpp"
#include "offline/packed_state.hpp"

namespace mcp {

namespace {

[[noreturn]] void throw_state_limit(std::size_t expanded, std::size_t stored) {
  throw ModelError("solve_ftf: state limit exceeded (states_expanded=" +
                   std::to_string(expanded) +
                   ", states_stored=" + std::to_string(stored) + ")");
}

/// Packed-engine variant: the interner knows its memory story, so capacity
/// failures are diagnosable from the message alone.
[[noreturn]] void throw_state_limit(std::size_t expanded,
                                    const StateInterner& interner) {
  std::ostringstream os;
  os << "solve_ftf: state limit exceeded (states_expanded=" << expanded
     << ", states_stored=" << interner.size()
     << ", arena_bytes=" << interner.arena_bytes()
     << ", peak_bytes_in_ram=" << interner.peak_bytes_in_ram()
     << ", table_load_factor=" << std::fixed << std::setprecision(3)
     << interner.load_factor() << ", bytes_spilled=" << interner.bytes_spilled()
     << ")";
  throw ModelError(os.str());
}

[[nodiscard]] std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

[[nodiscard]] std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Reference engine: binary-heap Dijkstra over heap-backed OfflineState nodes
// keyed in an unordered_map.  Retained as the differential-testing oracle for
// the packed engine below.
// ---------------------------------------------------------------------------

struct NodeInfo {
  Count dist = 0;
  // Parent pointer for schedule reconstruction (only when requested).
  const OfflineState* parent = nullptr;
  std::vector<PageId> step_evictions;
};

struct QueueEntry {
  Count dist;
  const OfflineState* state;
  bool operator>(const QueueEntry& other) const { return dist > other.dist; }
};

FtfResult solve_ftf_reference(const OfflineInstance& instance,
                              const FtfOptions& options) {
  const TransitionSystem system(instance, options.victim_rule);

  // Node ownership: the map's keys are the canonical state objects; queue
  // entries and parent pointers reference them (stable across rehashing —
  // unordered_map never moves its nodes).
  std::unordered_map<OfflineState, NodeInfo, OfflineStateHash> nodes;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;

  const OfflineState start = system.initial();
  nodes.emplace(start, NodeInfo{});
  queue.push(QueueEntry{0, &nodes.find(start)->first});

  FtfResult result;
  const OfflineState* goal = nullptr;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const auto it = nodes.find(*top.state);
    MCP_ASSERT(it != nodes.end());
    if (top.dist > it->second.dist) continue;  // stale entry
    if (system.is_terminal(*top.state)) {
      goal = top.state;
      result.min_faults = top.dist;
      break;
    }
    if (options.max_states != 0 && nodes.size() > options.max_states) {
      throw_state_limit(result.states_expanded, nodes.size());
    }
    ++result.states_expanded;

    system.expand(*top.state, [&](StepOutcome&& outcome) {
      const Count dist = top.dist + outcome.fault_count();
      auto [node_it, inserted] = nodes.try_emplace(std::move(outcome.next));
      if (!inserted && node_it->second.dist <= dist) return;
      node_it->second.dist = dist;
      if (options.build_schedule) {
        node_it->second.parent = top.state;
        node_it->second.step_evictions = std::move(outcome.evictions);
      }
      queue.push(QueueEntry{dist, &node_it->first});
    });
  }

  MCP_REQUIRE(goal != nullptr, "solve_ftf: no terminal state reachable");
  result.states_stored = nodes.size();

  if (options.build_schedule) {
    // Walk parents back to the start, collecting per-step eviction lists;
    // flatten in forward order.  Entries are per *fault*; steps without
    // faults contributed empty lists.
    std::vector<const std::vector<PageId>*> steps;
    for (const OfflineState* cur = goal; cur != nullptr;) {
      const NodeInfo& info = nodes.find(*cur)->second;
      if (info.parent == nullptr) break;
      steps.push_back(&info.step_evictions);
      cur = info.parent;
    }
    std::reverse(steps.begin(), steps.end());
    for (const auto* step : steps) {
      result.schedule.insert(result.schedule.end(), step->begin(), step->end());
    }
    MCP_ASSERT(result.schedule.size() == result.min_faults);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Packed engine: Dial's algorithm (bucket queue) over interned packed ids.
// One timestep costs 0..p faults, so distances are dense small integers and
// buckets replace the binary heap: O(1) push, monotone non-decreasing pops.
// All per-node metadata is flat vectors indexed by interned id.
//
// Parallel expansion (FtfOptions::workers != 1, no spill budget): bucket d
// is processed as *waves*.  A serial pre-scan walks the next <= kWaveCap
// entries, replaying the serial loop's pop/staleness bookkeeping, and
// collects the live entries; the wave is partitioned into fixed-size
// chunks expanded on mcp::ThreadPool against the frozen interner and
// distance array; a second parallel pass resolves duplicates; chunk
// emissions are then merged serially in chunk order.  This is
// bit-identical to the serial loop because nothing a bucket-d expansion
// does can change the pre-scanned facts: relaxations have nd >= d, so they
// can neither flip the staleness of another bucket-d entry (its dist is
// already <= d) nor its terminality (a property of the state words, which
// are immutable once interned), and the merge replays relaxations —
// including the per-entry max_states abort and the stop-at-first-terminal
// cut — in the exact serial order.
//
// Three kinds of serial work are hoisted onto the workers, leaving the
// merge with little more than id assignment and bucket pushes:
//
//  * chunks check terminality themselves (states after a terminal are
//    expanded speculatively; the merge discards everything from the first
//    terminal entry on, exactly where the serial loop stops);
//  * chunks pre-hash emissions and drop any whose frozen dist[target] <=
//    nd (the merge only ever lowers dist, so the serial relaxation would
//    be a no-op too);
//  * a sharded dedup pass resolves the surviving *unresolved* emissions:
//    emissions are owned by shards keyed on their hash's top bits, and
//    every shard scans the chunks in serial-emission order, so the winner
//    of each distinct new state is its serial-first occurrence at any
//    worker count.  The merge then interns winners with a probe-for-free-
//    slot-only insert (StateInterner::insert_absent_hashed — no word
//    compares) and resolves losers with one array lookup.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

/// Wave/chunk geometry.  Fixed constants — they shape the deterministic
/// merge order, so they must not depend on the worker count.
constexpr std::size_t kWaveCap = 2048;
constexpr std::size_t kFtfChunkStates = 8;
/// Shard count of the parallel dedup pass.  Fixed — shard ownership is part
/// of the deterministic merge contract, so it must not depend on workers.
constexpr std::size_t kDedupShards = 16;
/// FtfWaveChunk::dedup marker: this emission is the serial-first occurrence
/// of its state (all other values are the winner's wave-global ordinal).
constexpr std::uint32_t kDedupWinner = 0xFFFFFFFFu;

/// Emissions of one expansion chunk, recorded in serial sink order.
struct FtfWaveChunk {
  std::vector<std::uint8_t> terminals;      ///< per wave entry (stops chunk)
  std::vector<std::uint32_t> entry_counts;  ///< kept emissions per wave entry
  // Per kept emission:
  std::vector<std::uint32_t> resolved;  ///< frozen-table id, or kNoState
  std::vector<std::uint32_t> nds;       ///< tentative distance
  std::vector<std::uint32_t> evict_lens;  ///< schedule mode
  std::vector<PageId> evicts;             ///< schedule mode, concatenated
  // Per *unresolved* emission (resolved == kNoState):
  std::vector<std::uint64_t> hashes;  ///< pre-computed hash_words
  std::vector<std::uint64_t> words;   ///< stride words each
  std::vector<std::uint32_t> dedup;   ///< kDedupWinner or winner ordinal
  /// Unresolved-emission indices bucketed by owning dedup shard (emission
  /// order within each bucket), so a dedup shard visits exactly its own
  /// emissions instead of scanning every chunk's full list.
  std::array<std::vector<std::uint32_t>, kDedupShards> shard_emissions;
  PackedTransitionSystem::StepScratch scratch;
  std::uint64_t busy_ns = 0;  ///< thread CPU ns of the last expansion pass

  void clear() {
    terminals.clear();
    entry_counts.clear();
    resolved.clear();
    nds.clear();
    evict_lens.clear();
    evicts.clear();
    hashes.clear();
    words.clear();
    dedup.clear();
    for (auto& bucket : shard_emissions) bucket.clear();
  }
};

/// One slot of the wave-scoped dedup table (generation-stamped: bumping
/// `gen` empties every slot without touching memory).
struct FtfDedupSlot {
  std::uint64_t hash = 0;
  const std::uint64_t* words = nullptr;
  std::uint32_t ordinal = 0;
  std::uint32_t gen = 0;
};

/// Fingerprint binding a checkpoint to (instance, trajectory-affecting
/// options).  Workers, storage budget, and sentry knobs are deliberately
/// excluded: they do not change any solve result.
std::uint64_t ftf_fingerprint(const OfflineInstance& instance,
                              const FtfOptions& options) {
  std::uint64_t h = checkpoint::fingerprint(instance);
  h = checkpoint::fold(h, static_cast<std::uint64_t>(options.victim_rule));
  h = checkpoint::fold(h, options.build_schedule ? 1 : 0);
  h = checkpoint::fold(h, options.max_states);
  return checkpoint::fold(h, checkpoint::kKindFtf);
}

// Checkpoint section tags (FTF).
constexpr std::uint32_t kSecScalars = 1;
constexpr std::uint32_t kSecArena = 2;
constexpr std::uint32_t kSecHashes = 3;
constexpr std::uint32_t kSecDist = 4;
constexpr std::uint32_t kSecBuckets = 5;
constexpr std::uint32_t kSecParent = 6;
constexpr std::uint32_t kSecEvictOff = 7;
constexpr std::uint32_t kSecEvictLen = 8;
constexpr std::uint32_t kSecEvictPool = 9;

FtfResult solve_ftf_packed(const OfflineInstance& instance,
                           const FtfOptions& options) {
  const PackedTransitionSystem system(instance, options.victim_rule);
  const std::size_t stride = system.state_words();
  const bool schedule = options.build_schedule;
  const bool spill = options.storage.active();

  StateInterner interner(stride, options.storage);
  interner.reserve(
      options.expected_states != 0 ? options.expected_states : 4096);
  PackedTransitionSystem::StepScratch scratch;

  std::vector<std::uint32_t> dist;      // id -> best known distance
  std::vector<std::uint32_t> parent;    // id -> predecessor id (schedule mode)
  std::vector<std::uint32_t> evict_off; // id -> offset into evict_pool
  std::vector<std::uint16_t> evict_len; // id -> eviction count of best step
  std::vector<PageId> evict_pool;       // append-only flat eviction storage
  std::vector<std::vector<std::uint32_t>> buckets;

  FtfResult result;
  std::uint32_t goal = StateInterner::kNoState;
  std::uint32_t start_bucket = 0;
  const std::uint64_t fp = ftf_fingerprint(instance, options);

  if (options.checkpoint.resume) {
    // Rebuild every structure from the snapshot.  Re-interning the blocks in
    // id order reproduces the ids exactly; the hash table's internal layout
    // after the rebuild is irrelevant to any observable result.
    const checkpoint::Reader reader(options.checkpoint.path,
                                    checkpoint::kKindFtf, fp);
    const std::vector<std::uint64_t>& scalars = reader.section(kSecScalars);
    if (scalars.size() != 3)
      throw InputError("checkpoint '" + options.checkpoint.path +
                       "': malformed scalar section");
    start_bucket = static_cast<std::uint32_t>(scalars[0]);
    result.states_expanded = static_cast<std::size_t>(scalars[1]);
    const std::size_t count = static_cast<std::size_t>(scalars[2]);
    const std::vector<std::uint64_t>& arena = reader.section(kSecArena);
    const std::vector<std::uint64_t>& hashes = reader.section(kSecHashes);
    if (arena.size() != count * stride || hashes.size() != count)
      throw InputError("checkpoint '" + options.checkpoint.path +
                       "': arena sections disagree with the state count");
    interner.reserve(count);
    for (std::size_t id = 0; id < count; ++id) {
      const auto [nid, inserted] =
          interner.intern_hashed(arena.data() + id * stride, hashes[id]);
      if (!inserted || nid != id)
        throw InputError("checkpoint '" + options.checkpoint.path +
                         "': duplicate state in arena section");
    }
    reader.section_u32(kSecDist, dist);
    if (dist.size() != count)
      throw InputError("checkpoint '" + options.checkpoint.path +
                       "': distance array disagrees with the state count");
    std::vector<std::uint32_t> flat;
    reader.section_u32(kSecBuckets, flat);
    std::size_t pos = 0;
    const auto next_flat = [&]() -> std::uint32_t {
      if (pos >= flat.size())
        throw InputError("checkpoint '" + options.checkpoint.path +
                         "': truncated bucket section");
      return flat[pos++];
    };
    const std::uint32_t num_buckets = next_flat();
    buckets.resize(num_buckets);
    for (std::uint32_t b = 0; b < num_buckets; ++b) {
      const std::uint32_t len = next_flat();
      buckets[b].reserve(len);
      for (std::uint32_t i = 0; i < len; ++i) {
        const std::uint32_t id = next_flat();
        if (id >= count)
          throw InputError("checkpoint '" + options.checkpoint.path +
                           "': bucket entry out of range");
        buckets[b].push_back(id);
      }
    }
    if (schedule) {
      reader.section_u32(kSecParent, parent);
      reader.section_u32(kSecEvictOff, evict_off);
      std::vector<std::uint32_t> wide_len;
      reader.section_u32(kSecEvictLen, wide_len);
      reader.section_u32(kSecEvictPool, evict_pool);
      if (parent.size() != count || evict_off.size() != count ||
          wide_len.size() != count)
        throw InputError("checkpoint '" + options.checkpoint.path +
                         "': schedule sections disagree with the state count");
      evict_len.resize(count);
      for (std::size_t id = 0; id < count; ++id)
        evict_len[id] = static_cast<std::uint16_t>(wide_len[id]);
    }
    result.resumed = true;
  } else {
    std::vector<std::uint64_t> start(stride);
    system.initial(start.data());
    interner.intern(start.data());
    dist.push_back(0);
    if (schedule) {
      parent.push_back(StateInterner::kNoState);
      evict_off.push_back(0);
      evict_len.push_back(0);
    }
    buckets.emplace_back();
    buckets[0].push_back(0);
  }

  // Entries still queued.  Checkpoints are cut at bucket boundaries, with
  // every settled bucket already cleared, so the sum over the live buckets
  // is exact on both fresh and resumed solves.
  std::size_t pending = 0;
  for (const std::vector<std::uint32_t>& bucket : buckets)
    pending += bucket.size();

  // The chunked path needs frozen-interner concurrent reads, which the
  // spill layer's residency bookkeeping cannot provide — budgeted solves
  // run the serial loop.
  const bool chunked = options.workers != 1 && !spill;
  std::vector<FtfWaveChunk> chunks;
  std::vector<std::uint32_t> wave;
  // Wave-scoped dedup structures (chunked path), recycled across waves.
  std::vector<FtfDedupSlot> dedup_table;   // kDedupShards slices of shard_cap
  std::size_t dedup_shard_cap = 0;         // slots per shard (power of two)
  std::uint32_t dedup_gen = 0;             // current wave's generation stamp
  std::array<std::uint64_t, kDedupShards> dedup_busy{};
  std::vector<std::uint32_t> chunk_base;   // chunk -> first unresolved ordinal
  std::vector<std::uint32_t> merge_nids;   // unresolved ordinal -> merged id
  std::uint32_t checkpoints_written = 0;

  // Relaxation shared by the serial sink and the chunk merge — exactly the
  // serial order of side effects.
  const auto relax = [&](std::uint32_t nid, bool inserted, std::uint32_t nd,
                         std::uint32_t from, const PageId* ev,
                         std::uint32_t ev_count) {
    if (inserted) {
      dist.push_back(kUnreached);
      if (schedule) {
        parent.push_back(StateInterner::kNoState);
        evict_off.push_back(0);
        evict_len.push_back(0);
      }
    }
    if (dist[nid] <= nd) return;
    dist[nid] = nd;
    if (schedule) {
      parent[nid] = from;
      evict_off[nid] = static_cast<std::uint32_t>(evict_pool.size());
      evict_len[nid] = static_cast<std::uint16_t>(ev_count);
      evict_pool.insert(evict_pool.end(), ev, ev + ev_count);
    }
    if (nd >= buckets.size()) buckets.resize(nd + 1);
    buckets[nd].push_back(nid);
    ++pending;
  };

  for (std::uint32_t d = start_bucket;
       pending > 0 && goal == StateInterner::kNoState; ++d) {
    MCP_ASSERT(d < buckets.size());
    if (!chunked) {
      // Zero-fault self-distance steps append to buckets[d] mid-iteration:
      // index, don't iterate.
      for (std::size_t i = 0; i < buckets[d].size(); ++i) {
        const std::uint32_t id = buckets[d][i];
        --pending;
        if (dist[id] != d) continue;  // stale entry
        if (system.is_terminal(interner.state(id))) {
          goal = id;
          result.min_faults = d;
          break;
        }
        if (options.max_states != 0 && interner.size() > options.max_states) {
          throw_state_limit(result.states_expanded, interner);
        }
        ++result.states_expanded;

        // Allocation sentry (FtfOptions::alloc_guard): every expansion after
        // the first (which warms the step scratch) runs guarded — only the
        // relaxation sink below, a declared amortized growth point, may
        // allocate; an allocation inside the expansion kernel itself throws.
        std::optional<AllocGuard> expand_guard;
        if (options.alloc_guard && result.states_expanded > 1) {
          expand_guard.emplace("ftf expansion kernel");
        }

        system.expand(interner.state(id), scratch,
                      [&](const PackedOutcome& outcome) {
          // Declared growth: the relaxation sink's flat arrays (interner
          // arena/table via intern(), distance/parent/eviction arrays,
          // bucket queue) all grow amortized as new states are discovered.
          AllocAllow allow;
          const std::uint32_t nd =
              d + static_cast<std::uint32_t>(outcome.fault_count());
          const auto [nid, inserted] = interner.intern(outcome.next);
          relax(nid, inserted, nd, id,
                outcome.evictions.data(),
                static_cast<std::uint32_t>(outcome.evictions.size()));
        });
      }
    } else {
      std::size_t i = 0;
      while (i < buckets[d].size() && goal == StateInterner::kNoState) {
        // Serial pre-scan: replay the pop/staleness bookkeeping for the
        // next wave.  Terminality is checked by the workers — the merge
        // stops at the first terminal entry, exactly where the serial loop
        // stops.
        wave.clear();
        const std::size_t scan_end = std::min(buckets[d].size(), i + kWaveCap);
        for (std::size_t j = i; j < scan_end; ++j) {
          const std::uint32_t id = buckets[d][j];
          --pending;
          if (dist[id] != d) continue;  // stale entry
          wave.push_back(id);
        }
        i = scan_end;

        if (!wave.empty()) {
          const std::size_t num_chunks =
              (wave.size() + kFtfChunkStates - 1) / kFtfChunkStates;
          {
            // Declared growth: per-chunk buffers appear as waves widen.
            AllocAllow allow;
            if (chunks.size() < num_chunks) chunks.resize(num_chunks);
          }
          const auto expand_chunk = [&](std::size_t c) {
            const std::uint64_t cpu0 = thread_cpu_ns();
            FtfWaveChunk& out = chunks[c];
            out.clear();
            {
              // Declared growth: first-use warm-up — a chunk index first
              // used on a later (wider) wave starts with cold scratch.
              AllocAllow allow;
              out.scratch.work.reserve(stride);
              out.scratch.locked.reserve(stride);
              out.scratch.evictions.reserve(system.num_cores());
            }
            std::optional<AllocGuard> chunk_guard;
            if (options.alloc_guard) {
              chunk_guard.emplace("ftf expansion chunk");
            }
            const std::size_t begin = c * kFtfChunkStates;
            const std::size_t end =
                std::min(wave.size(), begin + kFtfChunkStates);
            for (std::size_t s = begin; s < end; ++s) {
              const std::uint64_t* state = interner.state(wave[s]);
              if (system.is_terminal(state)) {
                // The merge discards this entry and everything after it;
                // later chunks expand speculatively (dead work only on the
                // solve's final wave).
                AllocAllow terminal_allow;
                out.terminals.push_back(1);
                out.entry_counts.push_back(0);
                break;
              }
              std::uint32_t count = 0;
              system.expand(state, out.scratch,
                            [&](const PackedOutcome& outcome) {
                const std::uint32_t nd =
                    d + static_cast<std::uint32_t>(outcome.fault_count());
                const std::uint64_t hash =
                    StateInterner::hash_words(outcome.next, stride);
                const std::uint32_t rid = interner.find(outcome.next, hash);
                // Frozen-distance drop: the merge only ever lowers dist, so
                // dist[rid] <= nd now means the serial relaxation would be
                // a no-op at merge time too.
                if (rid != StateInterner::kNoState && dist[rid] <= nd) return;
                // Declared growth: wave emission buffers (recycled; grow
                // only while a wave widens past the chunk's past peaks).
                AllocAllow allow;
                out.resolved.push_back(rid);
                out.nds.push_back(nd);
                if (rid == StateInterner::kNoState) {
                  out.shard_emissions[(hash >> 60) % kDedupShards].push_back(
                      static_cast<std::uint32_t>(out.hashes.size()));
                  out.hashes.push_back(hash);
                  out.words.insert(out.words.end(), outcome.next,
                                   outcome.next + stride);
                }
                if (schedule) {
                  out.evict_lens.push_back(
                      static_cast<std::uint32_t>(outcome.evictions.size()));
                  out.evicts.insert(out.evicts.end(),
                                    outcome.evictions.begin(),
                                    outcome.evictions.end());
                }
                ++count;
              });
              AllocAllow allow;  // declared growth: per-entry buffers
              out.terminals.push_back(0);
              out.entry_counts.push_back(count);
            }
            out.busy_ns = thread_cpu_ns() - cpu0;
          };
          const std::uint64_t wall0 = wall_ns();
          {
            // Declared growth: pool dispatch packages the chunk tasks on
            // the heap.
            AllocAllow allow;
            ThreadPool::global().run_indexed(num_chunks, expand_chunk,
                                             options.workers);
          }

          // Sharded dedup of the unresolved emissions (parallel): shard
          // ownership is keyed on the hash's top bits, and every shard
          // scans the chunks in serial-emission order, so the winner of
          // each distinct new state is its serial-first occurrence at any
          // worker count.
          std::uint32_t total_unres = 0;
          {
            AllocAllow allow;  // declared growth: dedup directory/table
            if (chunk_base.size() < num_chunks) chunk_base.resize(num_chunks);
            for (std::size_t c = 0; c < num_chunks; ++c) {
              chunk_base[c] = total_unres;
              total_unres +=
                  static_cast<std::uint32_t>(chunks[c].hashes.size());
              chunks[c].dedup.resize(chunks[c].hashes.size());
            }
            std::size_t cap = 16;
            while (cap < 2 * static_cast<std::size_t>(total_unres)) cap <<= 1;
            if (cap > dedup_shard_cap) {
              dedup_shard_cap = cap;
              dedup_table.assign(kDedupShards * cap, FtfDedupSlot{});
              dedup_gen = 0;  // fresh slots: restart the generation stamps
            }
            if (merge_nids.size() < total_unres) merge_nids.resize(total_unres);
          }
          if (total_unres > 0) {
            ++dedup_gen;
            const auto dedup_shard = [&](std::size_t s) {
              const std::uint64_t cpu0 = thread_cpu_ns();
              std::optional<AllocGuard> shard_guard;
              if (options.alloc_guard) shard_guard.emplace("ftf dedup shard");
              const std::size_t mask = dedup_shard_cap - 1;
              FtfDedupSlot* slots = dedup_table.data() + s * dedup_shard_cap;
              for (std::size_t c = 0; c < num_chunks; ++c) {
                FtfWaveChunk& out = chunks[c];
                for (const std::uint32_t u : out.shard_emissions[s]) {
                  const std::uint64_t h = out.hashes[u];
                  const std::uint64_t* w = out.words.data() + u * stride;
                  std::size_t slot = static_cast<std::size_t>(h) & mask;
                  for (;;) {
                    FtfDedupSlot& cand = slots[slot];
                    if (cand.gen != dedup_gen) {
                      cand.hash = h;
                      cand.words = w;
                      cand.ordinal =
                          chunk_base[c] + static_cast<std::uint32_t>(u);
                      cand.gen = dedup_gen;
                      out.dedup[u] = kDedupWinner;
                      break;
                    }
                    if (cand.hash == h &&
                        std::memcmp(cand.words, w,
                                    stride * sizeof(std::uint64_t)) == 0) {
                      out.dedup[u] = cand.ordinal;
                      break;
                    }
                    slot = (slot + 1) & mask;
                  }
                }
              }
              dedup_busy[s] = thread_cpu_ns() - cpu0;
            };
            {
              AllocAllow allow;  // declared growth: pool dispatch
              ThreadPool::global().run_indexed(kDedupShards, dedup_shard,
                                               options.workers);
            }
            for (const std::uint64_t busy : dedup_busy)
              result.expand_busy_ns += busy;
          }
          result.expand_wall_ns += wall_ns() - wall0;
          for (std::size_t c = 0; c < num_chunks; ++c)
            result.expand_busy_ns += chunks[c].busy_ns;

          // Serial merge in chunk order — the exact serial interleaving,
          // including the terminal cut and the per-entry max_states aborts.
          AllocAllow allow;  // declared growth: relaxation arrays (as serial)
          for (std::size_t c = 0;
               c < num_chunks && goal == StateInterner::kNoState; ++c) {
            const FtfWaveChunk& out = chunks[c];
            std::size_t e = 0;   // emission cursor
            std::size_t uw = 0;  // unresolved-emission cursor
            std::size_t ev = 0;  // eviction cursor
            for (std::size_t le = 0; le < out.entry_counts.size(); ++le) {
              const std::uint32_t id = wave[c * kFtfChunkStates + le];
              if (out.terminals[le] != 0) {
                goal = id;
                result.min_faults = d;
                break;
              }
              if (options.max_states != 0 &&
                  interner.size() > options.max_states) {
                throw_state_limit(result.states_expanded, interner);
              }
              ++result.states_expanded;
              const std::uint32_t count = out.entry_counts[le];
              for (std::uint32_t k = 0; k < count; ++k, ++e) {
                std::uint32_t nid = out.resolved[e];
                bool inserted = false;
                if (nid == StateInterner::kNoState) {
                  if (out.dedup[uw] == kDedupWinner) {
                    nid = interner.insert_absent_hashed(
                        out.words.data() + uw * stride, out.hashes[uw]);
                    inserted = true;
                  } else {
                    nid = merge_nids[out.dedup[uw]];
                  }
                  merge_nids[chunk_base[c] + uw] = nid;
                  ++uw;
                }
                const std::uint32_t ev_count =
                    schedule ? out.evict_lens[e] : 0;
                const PageId* evp = out.evicts.data() + ev;
                ev += ev_count;
                relax(nid, inserted, out.nds[e], id, evp, ev_count);
              }
            }
          }
        }
      }
    }

    // Bucket d is settled: no relaxation can ever target it again (nd >= d),
    // so its queue storage is dead — free it now, keeping the live-bucket
    // suffix as the only queue memory (the Dial queue's settled prefix is
    // the first thing to go under memory pressure).
    std::vector<std::uint32_t>().swap(buckets[d]);

    if (goal == StateInterner::kNoState && pending > 0 &&
        options.checkpoint.enabled() &&
        (d + 1) % std::max<std::uint32_t>(options.checkpoint.every, 1) == 0) {
      checkpoint::Writer writer(checkpoint::kKindFtf, fp);
      const std::size_t count = interner.size();
      const std::vector<std::uint64_t> scalars = {
          d + 1, result.states_expanded, count};
      writer.section(kSecScalars, scalars);
      std::vector<std::uint64_t> arena;
      arena.reserve(count * stride);
      std::vector<std::uint64_t> hashes;
      hashes.reserve(count);
      for (std::uint32_t id = 0; id < count; ++id) {
        const std::uint64_t* words = interner.state(id);
        arena.insert(arena.end(), words, words + stride);
        hashes.push_back(interner.stored_hash(id));
      }
      writer.section(kSecArena, arena);
      writer.section(kSecHashes, hashes);
      writer.section(kSecDist, checkpoint::pack_u32(dist));
      std::vector<std::uint32_t> flat;
      flat.push_back(static_cast<std::uint32_t>(buckets.size()));
      for (const std::vector<std::uint32_t>& bucket : buckets) {
        flat.push_back(static_cast<std::uint32_t>(bucket.size()));
        flat.insert(flat.end(), bucket.begin(), bucket.end());
      }
      writer.section(kSecBuckets, checkpoint::pack_u32(flat));
      if (schedule) {
        writer.section(kSecParent, checkpoint::pack_u32(parent));
        writer.section(kSecEvictOff, checkpoint::pack_u32(evict_off));
        std::vector<std::uint32_t> wide_len(evict_len.begin(),
                                            evict_len.end());
        writer.section(kSecEvictLen, checkpoint::pack_u32(wide_len));
        writer.section(kSecEvictPool, checkpoint::pack_u32(evict_pool));
      }
      writer.write(options.checkpoint.path);
      ++checkpoints_written;
      if (options.checkpoint.halt_after_checkpoints != 0 &&
          checkpoints_written >= options.checkpoint.halt_after_checkpoints) {
        throw SolveInterrupted(
            "solve_ftf: halted by test hook after " +
            std::to_string(checkpoints_written) + " checkpoints");
      }
    }
  }

  MCP_REQUIRE(goal != StateInterner::kNoState,
              "solve_ftf: no terminal state reachable");
  result.states_stored = interner.size();
  result.arena_bytes = interner.arena_bytes();
  result.peak_bytes_in_ram = interner.peak_bytes_in_ram();
  result.bytes_spilled = interner.bytes_spilled();
  // Checked builds: the interner is structurally sound after the search.
  MCP_CHECKED_ONLY(interner.validate());

  if (schedule) {
    // Walk parent ids back to the start; flatten per-step eviction spans in
    // forward order.
    std::vector<std::uint32_t> chain;
    for (std::uint32_t cur = goal; parent[cur] != StateInterner::kNoState;
         cur = parent[cur]) {
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    for (std::uint32_t cur : chain) {
      const PageId* first = evict_pool.data() + evict_off[cur];
      result.schedule.insert(result.schedule.end(), first,
                             first + evict_len[cur]);
    }
    MCP_ASSERT(result.schedule.size() == result.min_faults);
  }
  return result;
}

}  // namespace

FtfResult solve_ftf(const OfflineInstance& instance, const FtfOptions& options) {
  if (options.engine == OfflineEngine::kPacked &&
      PackedTransitionSystem::supports(instance)) {
    return solve_ftf_packed(instance, options);
  }
  return solve_ftf_reference(instance, options);
}

}  // namespace mcp
