#include "offline/ftf_solver.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_map>

#include "core/error.hpp"

namespace mcp {

namespace {

struct NodeInfo {
  Count dist = 0;
  // Parent pointer for schedule reconstruction (only when requested).
  const OfflineState* parent = nullptr;
  std::vector<PageId> step_evictions;
};

struct QueueEntry {
  Count dist;
  const OfflineState* state;
  bool operator>(const QueueEntry& other) const { return dist > other.dist; }
};

}  // namespace

FtfResult solve_ftf(const OfflineInstance& instance, const FtfOptions& options) {
  const TransitionSystem system(instance, options.victim_rule);

  // Node ownership: the map's keys are the canonical state objects; queue
  // entries and parent pointers reference them (stable across rehashing —
  // unordered_map never moves its nodes).
  std::unordered_map<OfflineState, NodeInfo, OfflineStateHash> nodes;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;

  const OfflineState start = system.initial();
  nodes.emplace(start, NodeInfo{});
  queue.push(QueueEntry{0, &nodes.find(start)->first});

  FtfResult result;
  const OfflineState* goal = nullptr;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const auto it = nodes.find(*top.state);
    MCP_ASSERT(it != nodes.end());
    if (top.dist > it->second.dist) continue;  // stale entry
    if (system.is_terminal(*top.state)) {
      goal = top.state;
      result.min_faults = top.dist;
      break;
    }
    ++result.states_expanded;

    system.expand(*top.state, [&](StepOutcome&& outcome) {
      const Count dist = top.dist + outcome.fault_count();
      auto [node_it, inserted] = nodes.try_emplace(std::move(outcome.next));
      if (!inserted && node_it->second.dist <= dist) return;
      node_it->second.dist = dist;
      if (options.build_schedule) {
        node_it->second.parent = top.state;
        node_it->second.step_evictions = std::move(outcome.evictions);
      }
      if (options.max_states != 0 && nodes.size() > options.max_states) {
        throw ModelError("solve_ftf: state limit exceeded");
      }
      queue.push(QueueEntry{dist, &node_it->first});
    });
  }

  MCP_REQUIRE(goal != nullptr, "solve_ftf: no terminal state reachable");
  result.states_stored = nodes.size();

  if (options.build_schedule) {
    // Walk parents back to the start, collecting per-step eviction lists;
    // flatten in forward order.  Entries are per *fault*; steps without
    // faults contributed empty lists.
    std::vector<const std::vector<PageId>*> steps;
    for (const OfflineState* cur = goal; cur != nullptr;) {
      const NodeInfo& info = nodes.find(*cur)->second;
      if (info.parent == nullptr) break;
      steps.push_back(&info.step_evictions);
      cur = info.parent;
    }
    std::reverse(steps.begin(), steps.end());
    for (const auto* step : steps) {
      result.schedule.insert(result.schedule.end(), step->begin(), step->end());
    }
    MCP_ASSERT(result.schedule.size() == result.min_faults);
  }
  return result;
}

}  // namespace mcp
