#include "offline/instance_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/error.hpp"
#include "core/trace_io.hpp"

namespace mcp {

void write_pif_instance(std::ostream& os, const PifInstance& instance) {
  instance.validate();
  os << "mcppif 1\n";
  os << "cache " << instance.base.cache_size << '\n';
  os << "tau " << instance.base.tau << '\n';
  os << "deadline " << instance.deadline << '\n';
  os << "bounds";
  for (Count b : instance.bounds) os << ' ' << b;
  os << '\n';
  write_trace(os, instance.base.requests);
}

PifInstance read_pif_instance(std::istream& is) {
  PifInstance instance;
  std::string line;
  bool saw_header = false;
  bool saw_cache = false;
  bool saw_tau = false;
  bool saw_deadline = false;
  bool saw_bounds = false;

  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    const auto fail = [&](const std::string& why) -> void {
      throw InputError("pif line " + std::to_string(lineno) + ": " + why);
    };
    if (!saw_header) {
      int version = 0;
      if (keyword != "mcppif" || !(ls >> version) || version != 1) {
        fail("expected header 'mcppif 1'");
      }
      saw_header = true;
    } else if (keyword == "cache") {
      if (!(ls >> instance.base.cache_size)) fail("bad cache size");
      saw_cache = true;
    } else if (keyword == "tau") {
      if (!(ls >> instance.base.tau)) fail("bad tau");
      saw_tau = true;
    } else if (keyword == "deadline") {
      if (!(ls >> instance.deadline)) fail("bad deadline");
      saw_deadline = true;
    } else if (keyword == "bounds") {
      Count b = 0;
      while (ls >> b) instance.bounds.push_back(b);
      saw_bounds = true;
    } else if (keyword == "mcptrace") {
      if (!saw_cache || !saw_tau || !saw_deadline || !saw_bounds) {
        fail("trace before a complete pif header");
      }
      // Hand the trace (including this line) to the trace reader.
      std::ostringstream rest;
      rest << line << '\n' << is.rdbuf();
      std::istringstream trace_stream(rest.str());
      instance.base.requests = read_trace(trace_stream);
      instance.validate();
      return instance;
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  throw InputError("pif instance: missing embedded mcptrace document");
}

void save_pif_instance(const std::string& path, const PifInstance& instance) {
  std::ofstream os(path);
  if (!os) throw InputError("cannot open for writing: " + path);
  write_pif_instance(os, instance);
  if (!os) throw InputError("write failed: " + path);
}

PifInstance load_pif_instance(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw InputError("cannot open for reading: " + path);
  return read_pif_instance(is);
}

}  // namespace mcp
