// MAX-PARTIAL-INDIVIDUAL-FAULTS (Definition 3): maximize the number of
// sequences whose faults stay within their bounds at the deadline.
//
// Theorem 3 shows MAX-PIF is APX-hard (via 4-PARTITION), so no PTAS exists;
// this exact solver is exponential in p by necessity.  It decides, for
// subsets of cores in decreasing size, whether the PIF instance restricted
// to that subset (everyone else unbounded) is feasible, with two standard
// prunings: monotonicity (supersets of an infeasible subset are infeasible)
// and early exit on the first feasible subset of a given size.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "offline/instance.hpp"
#include "offline/pif_solver.hpp"

namespace mcp {

struct MaxPifResult {
  std::size_t max_satisfied = 0;      ///< most sequences within bounds
  std::vector<CoreId> witness;        ///< one maximizing subset (sorted)
  std::size_t subsets_tried = 0;      ///< PIF decisions run
};

/// Exact MAX-PIF by subset search over per-core bound enforcement.
/// Exponential in p (APX-hardness says it must be); tiny instances only.
[[nodiscard]] MaxPifResult solve_max_pif(const PifInstance& instance,
                                         const PifOptions& options = {});

}  // namespace mcp
