// Replaying offline eviction schedules through the real simulator.
//
// A schedule is one entry per fault, in the global order the simulator
// charges faults (step by step, logical core order within a step): the page
// evicted for that fault, or kInvalidPage when no eviction was needed.
// Replaying an FTF solver schedule and checking the simulated fault count
// equals the solver's optimum is the strongest cross-validation the suite
// has — the searches and the simulator implement the model independently.
#pragma once

#include <cstddef>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategy.hpp"
#include "offline/instance.hpp"
#include "policies/policies.hpp"

namespace mcp {

class ReplayStrategy final : public CacheStrategy {
 public:
  /// What to do when a fault arrives after the schedule's last entry.
  enum class OnExhausted {
    kThrow,        ///< the schedule must cover every fault (FTF replays)
    kFallbackLru,  ///< continue with LRU (PIF witnesses: post-deadline
                   ///< behaviour is immaterial, but the run must finish)
  };

  explicit ReplayStrategy(std::vector<PageId> schedule,
                          OnExhausted on_exhausted = OnExhausted::kThrow)
      : schedule_(std::move(schedule)), on_exhausted_(on_exhausted) {}

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override { return "REPLAY"; }

  /// Schedule entries consumed so far (== faults served from the script).
  [[nodiscard]] std::size_t consumed() const noexcept { return next_; }

 private:
  std::vector<PageId> schedule_;
  OnExhausted on_exhausted_;
  std::size_t next_ = 0;
  std::size_t cache_size_ = 0;
  LruPolicy lru_;  // shadow bookkeeping for the fallback
};

/// Runs `instance` under the given eviction schedule and returns the stats.
/// Throws ModelError if the schedule is too short, evicts an absent page, or
/// skips a required eviction.
[[nodiscard]] RunStats replay_schedule(const OfflineInstance& instance,
                                       const std::vector<PageId>& schedule);

}  // namespace mcp
