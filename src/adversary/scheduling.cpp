#include "adversary/scheduling.hpp"

#include "core/error.hpp"

namespace mcp {

void TimeMultiplexStrategy::attach(const SimConfig& config,
                                   std::size_t num_cores,
                                   const RequestSet* /*requests*/) {
  cache_size_ = config.cache_size;
  active_ = 0;
  done_.assign(num_cores, false);
  lru_.reset();
}

bool TimeMultiplexStrategy::defer_request(const AccessContext& ctx,
                                          const CacheState& /*cache*/) {
  return ctx.core != active_;
}

void TimeMultiplexStrategy::on_hit(const AccessContext& ctx) {
  lru_.on_hit(ctx.page, ctx);
}

void TimeMultiplexStrategy::on_fault(const AccessContext& ctx,
                                     const CacheState& cache, bool needs_cell,
                                     std::vector<PageId>& evictions) {
  if (!needs_cell) return;
  if (cache.occupied() == cache_size_) {
    const PageId victim = lru_.victim(
        ctx, [&cache](PageId page) { return cache.contains(page); });
    MCP_REQUIRE(victim != kInvalidPage, "time-mux: no evictable page");
    lru_.on_remove(victim);
    evictions.push_back(victim);
  }
  lru_.on_insert(ctx.page, ctx);
}

void TimeMultiplexStrategy::on_core_done(CoreId core, Time /*now*/) {
  done_[core] = true;
  while (active_ < done_.size() && done_[active_]) ++active_;
  if (active_ >= done_.size()) active_ = 0;  // everyone finished
}

}  // namespace mcp
