// Executable lower-bound constructions — the adversarial request families
// from the paper's proofs, each parameterized exactly as in the text.
//
//  * Lemma 1 (lower):  adaptive adversary against a fixed static partition —
//    the big-part core always requests the page the algorithm just evicted.
//  * Lemma 2:          fixed family on which any online static partition is
//    Omega(n) worse than the offline-optimal partition.
//  * Theorem 1.1:      the "distinct period" round-robin family on which
//    shared LRU beats every static partition by Omega(n).
//  * Theorem 1.3:      adaptive staged adversary against dynamic partitions
//    that change rarely.
//  * Lemma 4:          disjoint cyclic family with the sacrifice-one-core
//    offline strategy S_OFF, giving S_LRU/S_OFF = Omega(p(tau+1)) and
//    exposing FITF's non-optimality for tau > K/p.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/strategy.hpp"
#include "core/stream.hpp"
#include "policies/future_oracle.hpp"
#include "strategies/partition.hpp"

namespace mcp {

// ---------------------------------------------------------------------------
// Lemma 1 (lower bound): adaptive adversary vs a fixed static partition.
// ---------------------------------------------------------------------------

/// Adaptive stream for the Lemma 1 lower bound.  Core `victim_core` cycles
/// adaptively through `num_pages` private pages (k_max + 1 of them),
/// requesting whichever is currently absent; every other core requests one
/// fixed private page.  Page ids: core j owns [j*stride, (j+1)*stride).
class Lemma1AdversaryStream final : public RequestStream, public SimObserver {
 public:
  /// `requests_per_core` bounds each core's stream length (the paper's n/p).
  Lemma1AdversaryStream(std::size_t num_cores, CoreId victim_core,
                        std::size_t num_pages, std::size_t requests_per_core);

  [[nodiscard]] std::size_t num_cores() const override { return issued_.size(); }
  std::optional<PageId> next(CoreId core) override;
  SimObserver* observer() override { return this; }

  // Track residency of the victim core's pages.
  void on_fault(const AccessContext& ctx) override;
  void on_evict(PageId page, CoreId core, Time now, EvictionCause cause) override;

 private:
  [[nodiscard]] PageId my_page(std::size_t i) const {
    return static_cast<PageId>(victim_core_) * stride_ + static_cast<PageId>(i);
  }

  CoreId victim_core_;
  std::size_t num_pages_;
  std::size_t requests_per_core_;
  PageId stride_;
  std::vector<std::size_t> issued_;
  std::vector<bool> resident_;  // victim core's pages believed in cache
};

/// One point of the Lemma-1 adversarial fault curve.
struct AdversaryCurvePoint {
  std::size_t k_max = 0;  ///< size of the victim core's (largest) part
  Count online = 0;       ///< online policy faults on the adaptive stream
  Count opt = 0;          ///< sum of per-part Belady optima on that stream
  [[nodiscard]] double ratio() const noexcept {
    return opt == 0 ? 0.0
                    : static_cast<double>(online) / static_cast<double>(opt);
  }
};

/// Constructs the Lemma-1 lower-bound fault curve: for each k_max in
/// `k_values`, runs the adaptive adversary against the two-part partition
/// {k_max, background_part} under the named eviction policy, records the
/// stream it produced, and scores the online run against the per-part
/// offline optimum (sP^B_OPT).  The cells are independent simulations and
/// are swept on the shared thread pool; the adversary is adaptive but
/// seed-free, so the curve is bit-identical for any worker count.
[[nodiscard]] std::vector<AdversaryCurvePoint> lemma1_fault_curve(
    const std::vector<std::size_t>& k_values, const std::string& policy,
    std::size_t requests_per_core, std::size_t background_part = 2);

// ---------------------------------------------------------------------------
// Fixed request families.
// ---------------------------------------------------------------------------

/// Lemma 2 family for online static partition B: the p-1 "cycling" cores
/// overflow (or exactly fill) their parts while the smallest >=2-cell part's
/// core requests a single page, wasting its allocation.  `n` is the total
/// request budget (each core gets ~n/p requests).
[[nodiscard]] RequestSet lemma2_request_set(const Partition& partition,
                                            std::size_t total_requests);

/// Theorem 1.1 "distinct period" family: cores take turns cycling K/p + 1
/// distinct pages (x laps) while everyone else re-requests one page.
/// Requires p | K.  Page ids: core j owns [j*(K/p+2), ...).
[[nodiscard]] RequestSet theorem1_distinct_period_set(std::size_t num_cores,
                                                      std::size_t cache_size,
                                                      Time tau, std::size_t x);

/// Lemma 4 family: each core cycles K/p + 1 private pages for
/// `requests_per_core` requests.  Shared LRU faults on everything; the
/// sacrifice strategy serves p-1 cores from cache.  Requires p | K.
[[nodiscard]] RequestSet lemma4_request_set(std::size_t num_cores,
                                            std::size_t cache_size,
                                            std::size_t requests_per_core);

// ---------------------------------------------------------------------------
// Theorem 1.3: adaptive staged adversary.
// ---------------------------------------------------------------------------

/// Cores take turns being "in the distinct period" for `turn_length`
/// requests: the active core adaptively requests an absent page among its
/// first `pages_per_core` private pages; inactive cores re-request their
/// home page.  `laps` full rotations are issued.
class StagedAdversaryStream final : public RequestStream, public SimObserver {
 public:
  StagedAdversaryStream(std::size_t num_cores, std::size_t pages_per_core,
                        std::size_t turn_length, std::size_t laps);

  [[nodiscard]] std::size_t num_cores() const override { return issued_.size(); }
  std::optional<PageId> next(CoreId core) override;
  SimObserver* observer() override { return this; }

  void on_fault(const AccessContext& ctx) override;
  void on_evict(PageId page, CoreId core, Time now, EvictionCause cause) override;

 private:
  [[nodiscard]] PageId page_of(CoreId core, std::size_t i) const {
    return static_cast<PageId>(core) * stride_ + static_cast<PageId>(i);
  }

  std::size_t pages_per_core_;
  std::size_t turn_length_;
  std::size_t total_per_core_;
  PageId stride_;
  std::vector<std::size_t> issued_;
  std::vector<std::vector<bool>> resident_;  // per core, per private page
};

// ---------------------------------------------------------------------------
// Lemma 4: the offline "sacrifice one core" strategy S_OFF.
// ---------------------------------------------------------------------------

/// Offline strategy from the Lemma 4 proof: all cores except `sacrifice`
/// get their whole working set cached (faults evict the sacrifice's pages);
/// the sacrifice core's faults evict its own next-requested page, so it
/// alone keeps faulting while everyone else runs from cache.
class SacrificeStrategy final : public CacheStrategy {
 public:
  explicit SacrificeStrategy(CoreId sacrifice);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override { return "S_OFF(sacrifice)"; }

 private:
  CoreId sacrifice_;
  FutureOracle oracle_;
  std::vector<CoreId> owner_;  // page -> owning core
  std::vector<PageId> resident_;  // tracked resident pages (sorted)
  std::size_t cache_size_ = 0;
};

}  // namespace mcp
