// Scheduling-capable strategies — the power this paper's model forbids and
// Hassidim's model grants.
//
// The paper's Section 2 argues the models apart: Hassidim's offline
// algorithm "is able to modify the schedule of requests, and hence is more
// powerful than a regular cache eviction algorithm".  TimeMultiplexStrategy
// makes that power concrete: it serves one core at a time (deferring all
// others), giving the active core the whole cache.  Experiment E18 measures
// what the power buys (and costs): on working sets that don't fit together,
// multiplexing converts capacity thrash into compulsory misses, trading
// concurrency for locality; the faults-vs-makespan crossover moves with
// tau.
#pragma once

#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "policies/policies.hpp"

namespace mcp {

/// Serves cores one at a time in ascending id order (run-to-completion),
/// deferring everyone else; LRU inside.  Illegal in the paper's model
/// (uses the defer hook), legal in Hassidim's.
class TimeMultiplexStrategy final : public CacheStrategy {
 public:
  TimeMultiplexStrategy() = default;

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  [[nodiscard]] bool defer_request(const AccessContext& ctx,
                                   const CacheState& cache) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  void on_core_done(CoreId core, Time now) override;
  [[nodiscard]] std::string name() const override { return "TIME-MUX_LRU"; }

 private:
  std::size_t cache_size_ = 0;
  CoreId active_ = 0;
  std::vector<bool> done_;
  LruPolicy lru_;
};

}  // namespace mcp
