#include "adversary/adversary.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/static_partition.hpp"

namespace mcp {

// ---------------------------------------------------------------------------
// Lemma 1 fault-curve construction (parallel sweep over k_max).
// ---------------------------------------------------------------------------

std::vector<AdversaryCurvePoint> lemma1_fault_curve(
    const std::vector<std::size_t>& k_values, const std::string& policy,
    std::size_t requests_per_core, std::size_t background_part) {
  MCP_REQUIRE(background_part >= 1, "lemma1 curve: background part empty");
  SweepRunner sweep;
  return sweep.run(k_values.size(), [&](std::size_t cell, Rng& /*rng*/) {
    const std::size_t k_max = k_values[cell];
    const Partition partition = {k_max, background_part};
    // The adversary keeps the victim core one page ahead of its part.
    Lemma1AdversaryStream adversary(partition.size(), /*victim_core=*/0,
                                    k_max + 1, requests_per_core);
    RecordingStream recorder(adversary);
    StaticPartitionStrategy strategy(partition, make_policy_factory(policy));
    SimConfig config;
    config.cache_size = k_max + background_part;
    config.fault_penalty = 1;
    Simulator sim(config);
    AdversaryCurvePoint point;
    point.k_max = k_max;
    point.online = sim.run_stream(recorder, strategy, nullptr).total_faults();
    for (CoreId j = 0; j < partition.size(); ++j) {
      point.opt += belady_faults(recorder.recorded().sequence(j), partition[j]);
    }
    return point;
  });
}

// ---------------------------------------------------------------------------
// Lemma1AdversaryStream
// ---------------------------------------------------------------------------

Lemma1AdversaryStream::Lemma1AdversaryStream(std::size_t num_cores,
                                             CoreId victim_core,
                                             std::size_t num_pages,
                                             std::size_t requests_per_core)
    : victim_core_(victim_core),
      num_pages_(num_pages),
      requests_per_core_(requests_per_core),
      stride_(static_cast<PageId>(num_pages + 1)),
      issued_(num_cores, 0),
      resident_(num_pages, false) {
  MCP_REQUIRE(victim_core < num_cores, "lemma1: victim core out of range");
  MCP_REQUIRE(num_pages >= 2, "lemma1: need at least 2 adversarial pages");
}

std::optional<PageId> Lemma1AdversaryStream::next(CoreId core) {
  if (issued_[core] >= requests_per_core_) return std::nullopt;
  ++issued_[core];
  if (core != victim_core_) {
    // One fixed private page per background core.
    return static_cast<PageId>(core) * stride_;
  }
  // Request the first of my pages that is not in cache (there is always one:
  // the algorithm's part holds at most num_pages - 1 of them).
  for (std::size_t i = 0; i < num_pages_; ++i) {
    if (!resident_[i]) return my_page(i);
  }
  return my_page(0);  // defensive: all resident (shared strategy hoarding)
}

void Lemma1AdversaryStream::on_fault(const AccessContext& ctx) {
  if (ctx.core != victim_core_) return;
  const PageId base = static_cast<PageId>(victim_core_) * stride_;
  if (ctx.page >= base && ctx.page < base + stride_) {
    resident_[ctx.page - base] = true;
  }
}

void Lemma1AdversaryStream::on_evict(PageId page, CoreId /*core*/, Time /*now*/,
                                     EvictionCause /*cause*/) {
  const PageId base = static_cast<PageId>(victim_core_) * stride_;
  if (page >= base && page < base + static_cast<PageId>(num_pages_)) {
    resident_[page - base] = false;
  }
}

// ---------------------------------------------------------------------------
// Fixed families
// ---------------------------------------------------------------------------

RequestSet lemma2_request_set(const Partition& partition,
                              std::size_t total_requests) {
  const std::size_t p = partition.size();
  MCP_REQUIRE(p >= 2, "lemma2: need at least two cores");
  const std::size_t per_core = total_requests / p;

  // j* = argmin{k_j | k_j >= 2}; P = the k_{j*} cores with the largest parts.
  std::size_t jstar = p;
  for (std::size_t j = 0; j < p; ++j) {
    if (partition[j] >= 2 && (jstar == p || partition[j] < partition[jstar])) {
      jstar = j;
    }
  }
  MCP_REQUIRE(jstar < p, "lemma2: partition must have a part of size >= 2");
  std::vector<std::size_t> by_size(p);
  for (std::size_t j = 0; j < p; ++j) by_size[j] = j;
  std::stable_sort(by_size.begin(), by_size.end(),
                   [&partition](std::size_t a, std::size_t b) {
                     return partition[a] > partition[b];
                   });
  std::vector<bool> overflow(p, false);  // j in P' gets k_j + 1 pages
  for (std::size_t r = 0; r < std::min(partition[jstar], p); ++r) {
    if (by_size[r] != jstar) overflow[by_size[r]] = true;
  }

  RequestSet rs;
  PageId next_page = 0;
  for (std::size_t j = 0; j < p; ++j) {
    RequestSequence seq;
    if (j == jstar) {
      const std::vector<PageId> solo = {next_page};
      next_page += 1;
      seq.append_repeated(solo, per_core);
    } else {
      const std::size_t cycle = partition[j] + (overflow[j] ? 1 : 0);
      const std::vector<PageId> pages = page_block(next_page, cycle);
      next_page += static_cast<PageId>(cycle);
      const std::size_t laps = std::max<std::size_t>(1, per_core / cycle);
      seq.append_repeated(pages, laps);
    }
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

RequestSet theorem1_distinct_period_set(std::size_t num_cores,
                                        std::size_t cache_size, Time tau,
                                        std::size_t x) {
  MCP_REQUIRE(num_cores >= 2, "theorem1: need at least two cores");
  MCP_REQUIRE(cache_size % num_cores == 0, "theorem1: requires p | K");
  MCP_REQUIRE(x >= 1, "theorem1: x must be positive");
  const std::size_t cycle = cache_size / num_cores + 1;  // K/p + 1
  const std::size_t stride = cycle + 1;

  RequestSet rs;
  for (std::size_t j = 0; j < num_cores; ++j) {
    const PageId base = static_cast<PageId>(j * stride);
    RequestSequence seq;
    const std::vector<PageId> home = {base};
    // Quiet prefix while earlier cores take their distinct periods.
    seq.append_repeated(home, j * cycle * (tau + x));
    // The distinct period: x laps over K/p + 1 distinct pages.
    const std::vector<PageId> distinct = page_block(base, cycle);
    seq.append_repeated(distinct, x);
    // Quiet suffix while later cores take theirs.
    seq.append_repeated(home,
                        (cache_size + num_cores - (j + 1) * cycle) * (tau + x));
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

RequestSet lemma4_request_set(std::size_t num_cores, std::size_t cache_size,
                              std::size_t requests_per_core) {
  MCP_REQUIRE(num_cores >= 2, "lemma4: need at least two cores");
  MCP_REQUIRE(cache_size % num_cores == 0, "lemma4: requires p | K");
  const std::size_t cycle = cache_size / num_cores + 1;
  RequestSet rs;
  for (std::size_t j = 0; j < num_cores; ++j) {
    const std::vector<PageId> pages =
        page_block(static_cast<PageId>(j * cycle), cycle);
    RequestSequence seq;
    seq.append_repeated(pages, std::max<std::size_t>(1, requests_per_core / cycle));
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

// ---------------------------------------------------------------------------
// StagedAdversaryStream
// ---------------------------------------------------------------------------

StagedAdversaryStream::StagedAdversaryStream(std::size_t num_cores,
                                             std::size_t pages_per_core,
                                             std::size_t turn_length,
                                             std::size_t laps)
    : pages_per_core_(pages_per_core),
      turn_length_(turn_length),
      total_per_core_(turn_length * num_cores * laps),
      stride_(static_cast<PageId>(pages_per_core + 1)),
      issued_(num_cores, 0),
      resident_(num_cores, std::vector<bool>(pages_per_core, false)) {
  MCP_REQUIRE(num_cores >= 2, "staged adversary: need at least two cores");
  MCP_REQUIRE(pages_per_core >= 2, "staged adversary: need >= 2 pages per core");
}

std::optional<PageId> StagedAdversaryStream::next(CoreId core) {
  if (issued_[core] >= total_per_core_) return std::nullopt;
  const std::size_t slot = issued_[core]++;
  // Whose turn is it from this core's perspective?  Turns rotate every
  // `turn_length_` of the core's own requests, all cores in lockstep enough
  // for the lower-bound structure (exact global alignment is not required).
  const CoreId active =
      static_cast<CoreId>((slot / turn_length_) % issued_.size());
  if (active != core) return page_of(core, 0);  // home page
  for (std::size_t i = 0; i < pages_per_core_; ++i) {
    if (!resident_[core][i]) return page_of(core, i);
  }
  return page_of(core, 0);
}

void StagedAdversaryStream::on_fault(const AccessContext& ctx) {
  const CoreId core = ctx.core;
  const PageId base = static_cast<PageId>(core) * stride_;
  if (ctx.page >= base && ctx.page < base + static_cast<PageId>(pages_per_core_)) {
    resident_[core][ctx.page - base] = true;
  }
}

void StagedAdversaryStream::on_evict(PageId page, CoreId /*core*/, Time /*now*/,
                                     EvictionCause /*cause*/) {
  const CoreId owner = static_cast<CoreId>(page / stride_);
  const PageId offset = page % stride_;
  if (owner < resident_.size() && offset < pages_per_core_) {
    resident_[owner][offset] = false;
  }
}

// ---------------------------------------------------------------------------
// SacrificeStrategy
// ---------------------------------------------------------------------------

SacrificeStrategy::SacrificeStrategy(CoreId sacrifice) : sacrifice_(sacrifice) {}

void SacrificeStrategy::attach(const SimConfig& config, std::size_t num_cores,
                               const RequestSet* requests) {
  MCP_REQUIRE(requests != nullptr,
              "S_OFF is offline: it needs the materialized request set");
  MCP_REQUIRE(sacrifice_ < num_cores, "sacrifice core out of range");
  cache_size_ = config.cache_size;
  oracle_.attach(*requests);
  owner_ = requests->owner_map(requests->page_bound());
  resident_.clear();
}

void SacrificeStrategy::on_hit(const AccessContext& ctx) {
  oracle_.advance(ctx.core, ctx.seq_index + 1);
}

void SacrificeStrategy::on_fault(const AccessContext& ctx,
                                 const CacheState& cache, bool needs_cell,
                                 std::vector<PageId>& evictions) {
  oracle_.advance(ctx.core, ctx.seq_index + 1);
  if (!needs_cell) return;
  if (cache.occupied() == cache_size_) {
    PageId victim = kInvalidPage;
    if (ctx.core != sacrifice_) {
      // Take a cell from the sacrifice core: its page whose next request is
      // furthest (any would do; furthest is gentlest).
      std::uint64_t best = 0;
      for (PageId page : resident_) {
        if (owner_[page] != sacrifice_ || !cache.contains(page)) continue;
        const std::uint64_t dist = oracle_.next_use_in(sacrifice_, page);
        if (victim == kInvalidPage || dist > best) {
          victim = page;
          best = dist;
        }
      }
    } else {
      // The sacrifice core first reclaims *dead* pages of other cores (once
      // they finish, their working sets are never requested again — the
      // proof's "rest of R_p is served with all the cache"); while others
      // are live, it recycles itself, evicting its own page whose next
      // request is soonest so everyone else's working set survives.
      for (PageId page : resident_) {
        if (owner_[page] == sacrifice_ || !cache.contains(page)) continue;
        if (oracle_.next_use_any(page) == kNeverAgain) {
          victim = page;
          break;
        }
      }
      if (victim == kInvalidPage) {
        std::uint64_t best = 0;
        for (PageId page : resident_) {
          if (owner_[page] != sacrifice_ || !cache.contains(page)) continue;
          const std::uint64_t dist = oracle_.next_use_in(sacrifice_, page);
          if (victim == kInvalidPage || dist < best) {
            victim = page;
            best = dist;
          }
        }
      }
    }
    if (victim == kInvalidPage) {
      // Fallback (sacrifice has no evictable page): global FITF.
      std::uint64_t best = 0;
      for (PageId page : resident_) {
        if (!cache.contains(page)) continue;
        const std::uint64_t dist = oracle_.next_use_any(page);
        if (victim == kInvalidPage || dist > best) {
          victim = page;
          best = dist;
        }
      }
    }
    MCP_REQUIRE(victim != kInvalidPage, "S_OFF: no evictable page");
    const auto it = std::lower_bound(resident_.begin(), resident_.end(), victim);
    resident_.erase(it);
    evictions.push_back(victim);
  }
  const auto it =
      std::lower_bound(resident_.begin(), resident_.end(), ctx.page);
  resident_.insert(it, ctx.page);
}

}  // namespace mcp
