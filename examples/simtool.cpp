// simtool — a small CLI driver around the library: generate or load a
// trace, run a named strategy, print the stats.  The sixth example doubles
// as the end-to-end exercise of trace I/O.
//
// Usage:
//   simtool gen <pattern> <cores> <pages/core> <reqs/core> <out.trace> [seed]
//   simtool run <trace|-> <strategy> <K> <tau>
//   simtool compare <trace|-> <K> <tau>
//   simtool opt <trace|-> <K> <tau>        (tiny traces: exact FTF/makespan)
//   simtool reduce <tau> <B> <s1> <s2> ... <out.pif>   (Theorem 2 reduction)
//   simtool decide <file.pif>              (tiny instances: Algorithm 2)
//   simtool analyze <trace|-> [max_k]      (stack distances / LRU MRC)
//
// strategies: s-lru s-fifo s-clock s-lfu s-mru s-random s-mark s-fitf
//             p-even p-opt dp-lemma3 dp-utility dp-fairness
// ("-" reads the trace from stdin.)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <memory>
#include <string>

#include "core/simulator.hpp"
#include "core/trace_io.hpp"
#include "hardness/reduction.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/instance_io.hpp"
#include "offline/makespan_solver.hpp"
#include "offline/pif_solver.hpp"
#include "offline/replay.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/adaptive_partition.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/analysis.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  simtool gen <uniform|zipf|working-set|scan|loop|markov>"
               " <cores> <pages/core> <reqs/core> <out.trace> [seed]\n"
               "  simtool run <trace|-> <strategy> <K> <tau>\n"
               "  simtool compare <trace|-> <K> <tau>\n"
               "  simtool opt <trace|-> <K> <tau>   (tiny traces only)\n"
               "  simtool reduce <tau> <B> <s1> <s2> ... <out.pif>\n"
               "  simtool decide <file.pif>         (tiny instances only)\n"
               "  simtool analyze <trace|-> [max_k]\n"
               "strategies: s-<policy> s-fitf p-even p-opt dp-lemma3"
               " dp-utility dp-fairness\n");
  return 2;
}

/// Loads either the structured mcptrace format or the interleaved
/// "<core> <page>" pairs format, sniffing by the first non-comment token.
RequestSet load(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) throw InputError("cannot open for reading: " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  std::istringstream sniff(text);
  std::string line;
  while (std::getline(sniff, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream probe(text);
    if (line.rfind("mcptrace", 0) == 0) return read_trace(probe);
    return read_trace_pairs(probe);
  }
  throw InputError("empty trace: " + path);
}

std::unique_ptr<CacheStrategy> make_strategy(const std::string& name,
                                             const RequestSet& rs,
                                             std::size_t cache_size) {
  if (name.rfind("s-", 0) == 0) {
    const std::string policy = name.substr(2);
    if (policy == "fitf") return SharedStrategy::fitf();
    return std::make_unique<SharedStrategy>(make_policy_factory(policy));
  }
  if (name == "p-even") {
    return std::make_unique<StaticPartitionStrategy>(
        even_partition(cache_size, rs.num_cores()), make_policy_factory("lru"));
  }
  if (name == "p-opt") {
    const auto best =
        optimal_partition_for_policy(rs, cache_size, make_policy_factory("lru"));
    std::printf("# offline-optimal partition: %s (predicted faults %llu)\n",
                partition_to_string(best.partition).c_str(),
                static_cast<unsigned long long>(best.faults));
    return std::make_unique<StaticPartitionStrategy>(best.partition,
                                                     make_policy_factory("lru"));
  }
  if (name == "dp-lemma3") return std::make_unique<Lemma3DynamicPartition>();
  if (name == "dp-utility") {
    return std::make_unique<UtilityPartitionStrategy>(make_policy_factory("lru"));
  }
  if (name == "dp-fairness") {
    return std::make_unique<FairnessPartitionStrategy>(make_policy_factory("lru"));
  }
  throw InputError("unknown strategy: " + name);
}

int cmd_gen(int argc, char** argv) {
  if (argc < 7) return usage();
  CoreWorkload core;
  const std::string pattern = argv[2];
  if (pattern == "uniform") core.pattern = AccessPattern::kUniform;
  else if (pattern == "zipf") core.pattern = AccessPattern::kZipf;
  else if (pattern == "working-set") core.pattern = AccessPattern::kWorkingSet;
  else if (pattern == "scan") core.pattern = AccessPattern::kScan;
  else if (pattern == "loop") core.pattern = AccessPattern::kLoop;
  else if (pattern == "markov") core.pattern = AccessPattern::kMarkov;
  else return usage();
  const auto cores = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
  core.num_pages = static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
  core.length = static_cast<std::size_t>(std::strtoull(argv[5], nullptr, 10));
  const std::uint64_t seed =
      argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 0x5EED;
  const RequestSet rs = make_workload(homogeneous_spec(cores, core, true, seed));
  save_trace(argv[6], rs);
  std::printf("wrote %s: %s\n", argv[6], rs.describe().c_str());
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 6) return usage();
  const RequestSet rs = load(argv[2]);
  SimConfig cfg;
  cfg.cache_size = static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
  cfg.fault_penalty = std::strtoull(argv[5], nullptr, 10);
  const auto strategy = make_strategy(argv[3], rs, cfg.cache_size);
  const RunStats stats = simulate(cfg, rs, *strategy);
  std::printf("%s", stats.report(strategy->name()).c_str());
  return 0;
}

int cmd_opt(int argc, char** argv) {
  if (argc < 5) return usage();
  OfflineInstance inst;
  inst.requests = load(argv[2]);
  inst.cache_size = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
  inst.tau = std::strtoull(argv[4], nullptr, 10);
  if (inst.requests.total_requests() > 60 || inst.cache_size > 4 ||
      inst.requests.num_cores() > 3) {
    std::fprintf(stderr,
                 "opt: exact solvers are exponential in K and p — use a tiny "
                 "trace (n <= 60, K <= 4, p <= 3)\n");
    return 2;
  }
  FtfOptions options;
  options.build_schedule = true;
  const FtfResult ftf = solve_ftf(inst, options);
  std::printf("optimal total faults (Algorithm 1): %llu\n",
              static_cast<unsigned long long>(ftf.min_faults));
  const RunStats replay = replay_schedule(inst, ftf.schedule);
  std::printf("replayed through the simulator:     %llu faults, makespan %llu\n",
              static_cast<unsigned long long>(replay.total_faults()),
              static_cast<unsigned long long>(replay.makespan()));
  const MakespanResult ms = solve_min_makespan(inst);
  std::printf("optimal makespan:                   %llu\n",
              static_cast<unsigned long long>(ms.min_makespan));
  return 0;
}

int cmd_reduce(int argc, char** argv) {
  if (argc < 6) return usage();
  KPartitionInstance source;
  source.group_size = 3;
  const Time tau = std::strtoull(argv[2], nullptr, 10);
  source.target = static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10));
  for (int i = 4; i < argc - 1; ++i) {
    source.values.push_back(
        static_cast<std::uint32_t>(std::strtoul(argv[i], nullptr, 10)));
  }
  const PifReduction red = reduce_kpartition_to_pif(source, tau);
  save_pif_instance(argv[argc - 1], red.pif);
  std::printf("wrote %s: p=%zu, K=%zu, deadline=%llu (Theorem 2 reduction)\n",
              argv[argc - 1], source.values.size(), red.pif.base.cache_size,
              static_cast<unsigned long long>(red.pif.deadline));
  const auto solution = solve_kpartition(source);
  std::printf("3-PARTITION solver says: %s => PIF instance is %s\n",
              solution ? "solvable" : "unsolvable",
              solution ? "feasible" : "infeasible");
  return 0;
}

int cmd_decide(int argc, char** argv) {
  if (argc < 3) return usage();
  const PifInstance inst = load_pif_instance(argv[2]);
  if (inst.base.requests.total_requests() > 120 ||
      inst.base.cache_size > 4 || inst.base.requests.num_cores() > 3) {
    std::fprintf(stderr,
                 "decide: Algorithm 2 is exponential in K and p — use a tiny "
                 "instance (n <= 120, K <= 4, p <= 3)\n");
    return 2;
  }
  const PifResult result = solve_pif(inst);
  std::printf("PIF decision: %s (decided at layer %llu, peak width %zu)\n",
              result.feasible ? "FEASIBLE" : "INFEASIBLE",
              static_cast<unsigned long long>(result.decided_at),
              result.peak_layer_width);
  return result.feasible ? 0 : 3;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const RequestSet rs = load(argv[2]);
  const std::size_t max_k =
      argc > 3 ? static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10))
               : 32;
  std::printf("trace: %s%s\n", rs.describe().c_str(),
              rs.is_disjoint() ? " (disjoint)" : " (shared pages)");
  std::printf("%-6s %9s %9s %7s |  LRU faults at k = 1, 2, 4, ... %zu\n",
              "core", "requests", "distinct", "cold", max_k);
  for (CoreId j = 0; j < rs.num_cores(); ++j) {
    const StackDistanceHistogram hist(rs.sequence(j));
    std::printf("%-6u %9zu %9zu %7llu | ", j, rs.sequence(j).size(),
                hist.distinct(), static_cast<unsigned long long>(hist.cold()));
    for (std::size_t k = 1; k <= max_k; k *= 2) {
      std::printf(" %llu", static_cast<unsigned long long>(hist.lru_faults(k)));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 5) return usage();
  const RequestSet rs = load(argv[2]);
  SimConfig cfg;
  cfg.cache_size = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
  cfg.fault_penalty = std::strtoull(argv[4], nullptr, 10);
  std::printf("%-16s %10s %10s %10s %8s\n", "strategy", "faults", "rate",
              "makespan", "jain");
  for (const char* name : {"s-lru", "s-fifo", "s-clock", "s-mark", "s-fitf",
                           "p-even", "p-opt", "dp-lemma3", "dp-utility",
                           "dp-fairness"}) {
    try {
      const auto strategy = make_strategy(name, rs, cfg.cache_size);
      const RunStats stats = simulate(cfg, rs, *strategy);
      std::printf("%-16s %10llu %10.4f %10llu %8.3f\n", name,
                  static_cast<unsigned long long>(stats.total_faults()),
                  stats.overall_fault_rate(),
                  static_cast<unsigned long long>(stats.makespan()),
                  stats.jain_fairness());
    } catch (const ModelError& e) {
      std::printf("%-16s skipped (%s)\n", name, e.what());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "compare") return cmd_compare(argc, argv);
    if (cmd == "opt") return cmd_opt(argc, argv);
    if (cmd == "reduce") return cmd_reduce(argc, argv);
    if (cmd == "decide") return cmd_decide(argc, argv);
    if (cmd == "analyze") return cmd_analyze(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
