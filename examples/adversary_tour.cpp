// A tour of the paper's adversaries: watch each lower-bound construction
// punish the strategy it targets.
#include <algorithm>
#include <cstdio>

#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"

int main() {
  using namespace mcp;

  std::printf("=== Lemma 1: request-what-you-evicted vs sP[6,2]_LRU ===\n");
  {
    const Partition partition = {6, 2};
    Lemma1AdversaryStream adversary(2, /*victim_core=*/0, /*num_pages=*/7,
                                    /*requests_per_core=*/500);
    RecordingStream recorder(adversary);
    StaticPartitionStrategy strategy(partition, make_policy_factory("lru"));
    SimConfig cfg;
    cfg.cache_size = 8;
    cfg.fault_penalty = 1;
    Simulator sim(cfg);
    const RunStats stats = sim.run_stream(recorder, strategy, nullptr);
    Count opt = 0;
    for (CoreId j = 0; j < 2; ++j) {
      opt += belady_faults(recorder.recorded().sequence(j), partition[j]);
    }
    std::printf("  online LRU faults: %llu, per-part OPT on same trace: %llu"
                " -> ratio %.2f (Lemma 1 predicts ~max k_j = 6)\n\n",
                static_cast<unsigned long long>(stats.total_faults()),
                static_cast<unsigned long long>(opt),
                static_cast<double>(stats.total_faults()) /
                    static_cast<double>(opt));
  }

  std::printf("=== Theorem 1.1: distinct periods — sharing beats partitioning ===\n");
  {
    const RequestSet rs = theorem1_distinct_period_set(4, 8, /*tau=*/1, /*x=*/32);
    SimConfig cfg;
    cfg.cache_size = 8;
    cfg.fault_penalty = 1;
    SharedStrategy lru(make_policy_factory("lru"));
    const Count shared = simulate(cfg, rs, lru).total_faults();
    const auto part = optimal_partition_opt(rs, 8);
    std::printf("  S_LRU: %llu faults (just compulsory: K+p = 12);\n"
                "  best static partition %s with per-part Belady: %llu faults\n"
                "  -> even the *offline optimal* partition is %.1fx worse\n\n",
                static_cast<unsigned long long>(shared),
                partition_to_string(part.partition).c_str(),
                static_cast<unsigned long long>(part.faults),
                static_cast<double>(part.faults) / static_cast<double>(shared));
  }

  std::printf("=== Lemma 4: LRU vs the sacrificing offline strategy ===\n");
  {
    const std::size_t p = 4;
    const std::size_t K = 16;
    const Time tau = 7;
    const RequestSet rs = lemma4_request_set(p, K, 400);
    SimConfig cfg;
    cfg.cache_size = K;
    cfg.fault_penalty = tau;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats lru_stats = simulate(cfg, rs, lru);
    SacrificeStrategy off(static_cast<CoreId>(p - 1));
    const RunStats off_stats = simulate(cfg, rs, off);
    std::printf("  every core cycles K/p+1 pages: LRU faults on all %llu"
                " requests.\n",
                static_cast<unsigned long long>(lru_stats.total_faults()));
    std::printf("  S_OFF sacrifices core %zu: %llu faults total"
                " -> ratio %.1f (Omega(p(tau+1)) = %zu)\n",
                p - 1,
                static_cast<unsigned long long>(off_stats.total_faults()),
                static_cast<double>(lru_stats.total_faults()) /
                    static_cast<double>(off_stats.total_faults()),
                p * (static_cast<std::size_t>(tau) + 1));
    std::printf("  per-core faults under S_OFF:");
    for (CoreId j = 0; j < p; ++j) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(off_stats.core(j).faults));
    }
    std::printf("   (the sacrifice pays for everyone)\n\n");
  }

  std::printf("=== Lemma 4 coda: FITF is not optimal in multicore ===\n");
  {
    const RequestSet rs = lemma4_request_set(2, 4, 400);
    SimConfig cfg;
    cfg.cache_size = 4;
    cfg.fault_penalty = 5;  // tau > K/p = 2
    auto fitf = SharedStrategy::fitf();
    const Count fitf_faults = simulate(cfg, rs, *fitf).total_faults();
    SacrificeStrategy off(1);
    const Count off_faults = simulate(cfg, rs, off).total_faults();
    std::printf("  tau=5 > K/p=2:  S_FITF = %llu faults, S_OFF = %llu faults\n"
                "  furthest-in-the-future, optimal for one core, loses here —\n"
                "  delaying one core on purpose aligns the others' demand.\n",
                static_cast<unsigned long long>(fitf_faults),
                static_cast<unsigned long long>(off_faults));
  }
  return 0;
}
