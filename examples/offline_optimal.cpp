// Offline optimum end-to-end on a tiny instance: Algorithm 1 (optimal
// FINAL-TOTAL-FAULTS), schedule replay through the simulator, the Theorem-5
// restricted search, and an Algorithm 2 PIF decision — compared against
// online LRU.
#include <cstdio>

#include "core/simulator.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/pif_solver.hpp"
#include "offline/replay.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

int main() {
  using namespace mcp;

  // A small disjoint instance where eviction order genuinely matters:
  // two cores, three pages each, cache K=3, fault penalty tau=2.
  OfflineInstance instance;
  instance.requests.add_sequence(RequestSequence{0, 1, 2, 0, 1, 2, 0, 1});
  instance.requests.add_sequence(RequestSequence{10, 11, 10, 12, 11, 10});
  instance.cache_size = 3;
  instance.tau = 2;
  std::printf("instance: %s, K=%zu, tau=%llu\n",
              instance.requests.describe().c_str(), instance.cache_size,
              static_cast<unsigned long long>(instance.tau));

  // Online baseline.
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats lru_stats = simulate(instance.sim_config(), instance.requests, lru);
  std::printf("\nS_LRU (online):            %llu faults\n",
              static_cast<unsigned long long>(lru_stats.total_faults()));

  // Algorithm 1: exact optimum, with the optimal eviction schedule.
  FtfOptions options;
  options.build_schedule = true;
  const FtfResult opt = solve_ftf(instance, options);
  std::printf("Algorithm 1 (exact OPT):   %llu faults  (%zu states stored)\n",
              static_cast<unsigned long long>(opt.min_faults),
              opt.states_stored);

  // Theorem 5: the same optimum is reachable evicting only
  // furthest-in-future-within-some-sequence pages.
  FtfOptions restricted;
  restricted.victim_rule = VictimRule::kFitfPerSequence;
  const FtfResult fitf = solve_ftf(instance, restricted);
  std::printf("Theorem-5 restricted OPT:  %llu faults  (%zu states stored)\n",
              static_cast<unsigned long long>(fitf.min_faults),
              fitf.states_stored);

  // Replay the optimal schedule through the real simulator — the counts
  // must agree (this is how the test suite validates the solver, too).
  const RunStats replay = replay_schedule(instance, opt.schedule);
  std::printf("replayed schedule:         %llu faults (simulator-verified)\n",
              static_cast<unsigned long long>(replay.total_faults()));

  std::printf("\noptimal eviction schedule (one entry per fault):\n  ");
  for (PageId victim : opt.schedule) {
    if (victim == kInvalidPage) {
      std::printf("[free] ");
    } else {
      std::printf("[evict %u] ", victim);
    }
  }
  std::printf("\n");

  // Algorithm 2: PIF questions — can we serve the instance so that by time
  // 12 each core has faulted at most b times?  The feasibility frontier sits
  // between b=3 (no) and b=4 (yes); and the same bound that works at t=12
  // fails at t=16, showing feasibility is antitone in the deadline.
  PifInstance pif;
  pif.base = instance;
  pif.deadline = 12;
  pif.bounds = {4, 4};
  std::printf("\nPIF: at most 4 faults per core by t=12?  %s\n",
              solve_pif(pif).feasible ? "YES" : "NO");
  PifInstance tight = pif;
  tight.bounds = {3, 3};
  std::printf("PIF: at most 3 faults per core by t=12?  %s\n",
              solve_pif(tight).feasible ? "YES" : "NO");
  PifInstance later = pif;
  later.deadline = 16;
  std::printf("PIF: at most 4 faults per core by t=16?  %s"
              "  (later deadlines are harder)\n",
              solve_pif(later).feasible ? "YES" : "NO");
  return 0;
}
