// A guided, executable tour of the model semantics — the worked examples of
// docs/MODEL.md run live, with assertions.  If this binary prints all OK,
// the documentation and the simulator agree.
#include <cassert>
#include <cstdio>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "FAIL", what);
  if (!ok) std::exit(1);
}

}  // namespace

int main() {
  using namespace mcp;
  std::printf("docs/MODEL.md, executed:\n\n");

  {
    std::printf("Worked example: K=2, tau=2, one core, R = a b a c\n");
    RequestSet rs;
    rs.add_sequence(RequestSequence{1, 2, 1, 3});
    SimConfig cfg;
    cfg.cache_size = 2;
    cfg.fault_penalty = 2;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, lru);
    check(stats.core(0).fault_times == std::vector<Time>({0, 3, 7}),
          "faults issue at t = 0, 3, 7");
    check(stats.core(0).hits == 1, "the second 'a' (t=6) is the only hit");
    check(stats.core(0).completion_time == 9,
          "the 'c' fault finishes at t = 7 + tau = 9");
  }

  {
    std::printf("\nLogical order: same-step eviction is visible to later cores\n");
    // K=2, tau=0.  At t=1 core 0 evicts page 1 (LRU) before core 1's
    // same-step request to page 2, which therefore still hits.
    RequestSet rs;
    rs.add_sequence(RequestSequence{1, 3});
    rs.add_sequence(RequestSequence{2, 2});
    SimConfig cfg;
    cfg.cache_size = 2;
    cfg.fault_penalty = 0;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, lru);
    check(stats.core(1).hits == 1, "core 1's second request hits");
    check(stats.core(0).faults == 2, "core 0 faults twice");
  }

  {
    std::printf("\nReserved cells: a mid-fetch page is neither usable nor evictable\n");
    CacheState cache(2);
    cache.begin_fetch(/*page=*/7, /*core=*/0, /*ready_at=*/5);
    check(!cache.contains(7), "page 7 is not hit-able during its fetch");
    bool threw = false;
    try {
      cache.evict(7);
    } catch (const ModelError&) {
      threw = true;
    }
    check(threw, "evicting the reserved cell throws ModelError");
    cache.complete_fetches(5);
    check(cache.contains(7), "page 7 is present once the fetch lands");
  }

  {
    std::printf("\nPIF accounting: faults count against t iff issued before t\n");
    RequestSet rs;
    rs.add_sequence(RequestSequence{1, 2, 1, 3});
    SimConfig cfg;
    cfg.cache_size = 2;
    cfg.fault_penalty = 2;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, lru);
    check(stats.faults_before(0, 3) == 1, "by t=3: only the t=0 fault");
    check(stats.faults_before(0, 4) == 2, "by t=4: the t=3 fault counts");
    check(stats.faults_before(0, 100) == 3, "eventually all 3 count");
  }

  std::printf("\nAll model assertions hold — the docs and the simulator agree.\n");
  return 0;
}
