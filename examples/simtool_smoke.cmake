# Drives the simtool CLI end to end: generate a trace, run one strategy,
# compare all strategies.
execute_process(COMMAND ${SIMTOOL} gen zipf 4 32 2000 ${WORKDIR}/smoke.trace 9
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${SIMTOOL} run ${WORKDIR}/smoke.trace s-lru 32 4
                RESULT_VARIABLE rc2)
execute_process(COMMAND ${SIMTOOL} compare ${WORKDIR}/smoke.trace 32 4
                RESULT_VARIABLE rc3)
execute_process(COMMAND ${SIMTOOL} reduce 0 12 4 4 4 ${WORKDIR}/smoke.pif
                RESULT_VARIABLE rc4)
execute_process(COMMAND ${SIMTOOL} decide ${WORKDIR}/smoke.pif
                RESULT_VARIABLE rc5)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0 OR NOT rc3 EQUAL 0 OR NOT rc4 EQUAL 0
   OR NOT rc5 EQUAL 0)
  message(FATAL_ERROR "simtool smoke failed: gen=${rc1} run=${rc2}"
          " compare=${rc3} reduce=${rc4} decide=${rc5}")
endif()
