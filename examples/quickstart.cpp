// Quickstart: simulate a 4-core shared cache under two strategies and
// compare.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The walk-through: build a multicore workload, pick a cache model
// (K pages, fault penalty tau), choose a strategy — shared LRU here, then an
// evenly partitioned LRU — run the simulator, and read the stats.
#include <cstdio>

#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace mcp;

  // 1. A workload: four cores, each walking its own 48-page range with
  //    Zipf-distributed popularity, 5000 requests per core.
  CoreWorkload core;
  core.pattern = AccessPattern::kZipf;
  core.num_pages = 48;
  core.zipf_alpha = 0.9;
  core.length = 5000;
  const RequestSet requests =
      make_workload(homogeneous_spec(/*num_cores=*/4, core,
                                     /*disjoint=*/true, /*seed=*/2024));
  std::printf("workload: %s\n\n", requests.describe().c_str());

  // 2. The cache model: K = 64 shared pages, a miss delays its core by
  //    tau = 8 additional timesteps (the paper's model, Section 3).
  SimConfig config;
  config.cache_size = 64;
  config.fault_penalty = 8;

  // 3. Strategy A: one LRU policy over the whole cache (the paper's S_LRU).
  SharedStrategy shared_lru(make_policy_factory("lru"));
  const RunStats shared_stats = simulate(config, requests, shared_lru);
  std::printf("%s", shared_stats.report(shared_lru.name()).c_str());

  // 4. Strategy B: split the cache evenly, one LRU per part (sP^B_LRU).
  StaticPartitionStrategy partitioned(even_partition(config.cache_size, 4),
                                      make_policy_factory("lru"));
  const RunStats part_stats = simulate(config, requests, partitioned);
  std::printf("\n%s", part_stats.report(partitioned.name()).c_str());

  // 5. Compare.
  std::printf("\nshared vs partitioned faults: %llu vs %llu (%+.1f%%)\n",
              static_cast<unsigned long long>(shared_stats.total_faults()),
              static_cast<unsigned long long>(part_stats.total_faults()),
              100.0 *
                  (static_cast<double>(part_stats.total_faults()) /
                       static_cast<double>(shared_stats.total_faults()) -
                   1.0));
  return 0;
}
