// Checkpoint/resume driver for the packed FTF solver — the CLI behind the
// offline-resume-smoke CI job.  It solves one fixed seeded instance
// (p = 2, 5 pages/core, 48 requests/core, K = 4, tau = 2 — the E8 /
// BENCH_OFFLINE family) and prints a one-line JSON summary, so a shell
// script can kill a checkpointed solve mid-way, resume it, and diff the
// resumed schedule against an uninterrupted run:
//
//   offline_checkpoint_tool --schedule-out clean.txt
//   offline_checkpoint_tool --checkpoint s.ckpt --kill-after 2   # dies: KILL
//   offline_checkpoint_tool --checkpoint s.ckpt --resume --schedule-out r.txt
//   diff clean.txt resumed.txt
//
// --kill-after N arms the solver's halt-after-checkpoints hook and converts
// the resulting SolveInterrupted into raise(SIGKILL): the process dies
// uncleanly (no unwinding, no atexit) right after the Nth checkpoint write,
// leaving exactly the on-disk state of a solve killed at that boundary.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "offline/checkpoint.hpp"
#include "offline/ftf_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

OfflineInstance demo_instance() {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 5;
  core.length = 48;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(2, core, true, 78));
  inst.cache_size = 4;
  inst.tau = 2;
  return inst;
}

std::uint64_t schedule_hash(const std::vector<PageId>& schedule) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the victim list
  for (const PageId page : schedule) {
    h ^= static_cast<std::uint64_t>(page);
    h *= 1099511628211ULL;
  }
  return h;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --checkpoint PATH    checkpoint file (enables checkpointing)\n"
      << "  --every N            checkpoint every N settled buckets (def 1)\n"
      << "  --resume             resume from --checkpoint instead of fresh\n"
      << "  --kill-after N       raise SIGKILL after the Nth checkpoint\n"
      << "  --workers N          expansion worker cap (default 1 = serial)\n"
      << "  --ram-budget BYTES   interner spill budget (0 = unbounded)\n"
      << "  --segment-bytes B    spill segment granularity\n"
      << "  --schedule-out FILE  write the eviction schedule, one per line\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FtfOptions options;
  options.build_schedule = true;
  options.workers = 1;
  std::string schedule_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--checkpoint") {
      options.checkpoint.path = value();
    } else if (arg == "--every") {
      options.checkpoint.every =
          static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--resume") {
      options.checkpoint.resume = true;
    } else if (arg == "--kill-after") {
      options.checkpoint.halt_after_checkpoints =
          static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--workers") {
      options.workers = std::stoul(value());
    } else if (arg == "--ram-budget") {
      options.storage.ram_bytes = std::stoul(value());
    } else if (arg == "--segment-bytes") {
      options.storage.segment_bytes = std::stoul(value());
    } else if (arg == "--schedule-out") {
      schedule_out = value();
    } else {
      return usage(argv[0]);
    }
  }

  try {
    const FtfResult result = solve_ftf(demo_instance(), options);
    if (!schedule_out.empty()) {
      std::ofstream out(schedule_out);
      for (const PageId page : result.schedule) out << page << '\n';
      if (!out) {
        std::cerr << "error: cannot write " << schedule_out << '\n';
        return 2;
      }
    }
    std::cout << "{\"min_faults\": " << result.min_faults
              << ", \"states_expanded\": " << result.states_expanded
              << ", \"states_stored\": " << result.states_stored
              << ", \"bytes_spilled\": " << result.bytes_spilled
              << ", \"resumed\": " << (result.resumed ? "true" : "false")
              << ", \"schedule_hash\": " << schedule_hash(result.schedule)
              << "}\n";
  } catch (const SolveInterrupted&) {
    // Die the hard way — the checkpoint on disk is all that survives, which
    // is precisely what the resume smoke wants to test.
    std::raise(SIGKILL);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
