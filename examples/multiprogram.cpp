// Multiprogrammed workload study — the scenario the paper's introduction
// motivates: heterogeneous processes share one cache; how do strategy
// families trade total faults against per-core fairness?
//
// Four cores with very different behaviour: a Zipf-hot web-ish process, a
// phase-based "program", a streaming scan, and a tight kernel loop.  We run
// every strategy family and report fault rate, makespan and Jain fairness
// over per-core slowdowns.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/progress.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

mcp::RequestSet heterogeneous_workload() {
  using namespace mcp;
  WorkloadSpec spec;
  spec.disjoint = true;
  spec.seed = 7;

  CoreWorkload hot;          // skewed key-value style accesses
  hot.pattern = AccessPattern::kZipf;
  hot.num_pages = 96;
  hot.zipf_alpha = 1.1;
  hot.length = 6000;
  spec.cores.push_back(hot);

  CoreWorkload program;      // classic working-set phases
  program.pattern = AccessPattern::kWorkingSet;
  program.num_pages = 128;
  program.working_set = 10;
  program.phase_length = 400;
  program.length = 6000;
  spec.cores.push_back(program);

  CoreWorkload stream;       // sequential scan, cache-hostile
  stream.pattern = AccessPattern::kScan;
  stream.num_pages = 200;
  stream.length = 6000;
  spec.cores.push_back(stream);

  CoreWorkload kernel;       // tiny loop, cache-friendly
  kernel.pattern = AccessPattern::kLoop;
  kernel.num_pages = 32;
  kernel.loop_length = 6;
  kernel.length = 6000;
  spec.cores.push_back(kernel);
  return make_workload(spec);
}

void report_row(const std::string& name, const mcp::RunStats& stats,
                double spread) {
  std::printf("%-22s %8llu %9.4f %9llu %7.3f %7.3f |", name.c_str(),
              static_cast<unsigned long long>(stats.total_faults()),
              stats.overall_fault_rate(),
              static_cast<unsigned long long>(stats.makespan()),
              stats.jain_fairness(), spread);
  for (mcp::CoreId j = 0; j < stats.num_cores(); ++j) {
    std::printf(" %6llu",
                static_cast<unsigned long long>(stats.core(j).faults));
  }
  std::printf("\n");
}

/// Runs `strategy` with a ProgressTracker attached; reports the worst
/// relative-progress spread alongside the usual stats.
template <typename Strategy>
void run_and_report(const std::string& name, const mcp::RequestSet& requests,
                    const mcp::SimConfig& config, Strategy&& strategy) {
  mcp::ProgressTracker tracker(requests.num_cores(), /*sample_interval=*/256);
  mcp::Simulator sim(config);
  sim.add_observer(&tracker);
  const mcp::RunStats stats = sim.run(requests, strategy);
  report_row(name, stats, tracker.max_spread(requests));
}

}  // namespace

int main() {
  using namespace mcp;
  const RequestSet requests = heterogeneous_workload();
  SimConfig config;
  config.cache_size = 64;
  config.fault_penalty = 8;

  std::printf("multiprogram workload: zipf | phases | scan | loop  (%s)\n\n",
              requests.describe().c_str());
  std::printf("%-22s %8s %9s %9s %7s %7s | per-core faults\n", "strategy",
              "faults", "rate", "makespan", "jain", "spread");

  for (const char* policy : {"lru", "fifo", "clock", "lfu", "mark"}) {
    SharedStrategy shared(make_policy_factory(policy));
    run_and_report("S_" + std::string(policy), requests, config, shared);
  }

  StaticPartitionStrategy even(even_partition(config.cache_size, 4),
                               make_policy_factory("lru"));
  run_and_report("sP_even_LRU", requests, config, even);

  // Offline-tuned partition: give each core what its own fault curve earns.
  const auto tuned = optimal_partition_for_policy(requests, config.cache_size,
                                                  make_policy_factory("lru"));
  StaticPartitionStrategy best(tuned.partition, make_policy_factory("lru"));
  run_and_report("sP^OPT_LRU " + partition_to_string(tuned.partition),
                 requests, config, best);

  Lemma3DynamicPartition dynamic;
  run_and_report(dynamic.name(), requests, config, dynamic);

  auto fitf = SharedStrategy::fitf();
  run_and_report("S_FITF (offline)", requests, config, *fitf);

  std::printf(
      "\nNotes: the scan core is hopeless for everyone (no reuse); the tuned\n"
      "partition shields the loop and phase cores from it, which shows up as\n"
      "a higher Jain index; 'spread' is the worst max-min gap in normalized\n"
      "progress across cores (the paper's relative-progress measure); shared\n"
      "FITF shows how much headroom is left.\n");
  return 0;
}
