// Theorem 2 end-to-end: 3-PARTITION instance -> PIF instance -> certificate
// schedule -> simulator verification, and the NO-instance counterpart.
#include <cstdio>

#include "core/simulator.hpp"
#include "hardness/reduction.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

int main() {
  using namespace mcp;

  // A YES instance of 3-PARTITION: S = {4,4,5, 4,4,5}, B = 13.
  KPartitionInstance source;
  source.values = {4, 5, 4, 4, 5, 4};
  source.target = 13;
  source.group_size = 3;
  std::printf("3-PARTITION: S = {4,5,4,4,5,4}, B = 13\n");

  const auto solution = solve_kpartition(source);
  if (!solution) {
    std::printf("unexpected: solver found no partition\n");
    return 1;
  }
  std::printf("solver found a partition:");
  for (const auto& group : *solution) {
    std::printf("  {");
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::printf("%s%u", i ? "," : "", source.values[group[i]]);
    }
    std::printf("}");
  }
  std::printf("\n\n");

  // The Theorem 2 reduction.
  const Time tau = 2;
  const PifReduction red = reduce_kpartition_to_pif(source, tau);
  std::printf("reduced PIF instance: p=%zu alternating-page sequences,\n"
              "  K = (4/3)p = %zu, tau = %llu, deadline t = B(tau+1)+4tau+5 = "
              "%llu,\n  bounds b_i = B - s_i + 4 =",
              red.values.size(), red.pif.base.cache_size,
              static_cast<unsigned long long>(tau),
              static_cast<unsigned long long>(red.pif.deadline));
  for (Count b : red.pif.bounds) {
    std::printf(" %llu", static_cast<unsigned long long>(b));
  }
  std::printf("\n\n");

  // Play the proof's schedule: each group of 3 sequences shares 4 cells and
  // rotates the spare cell so member i gets exactly h_i = s_i(tau+1)+1 hits.
  const RunStats stats = play_certificate(red, *solution);
  std::printf("certificate schedule, faults by the deadline vs bound:\n");
  bool all_ok = true;
  for (CoreId i = 0; i < red.values.size(); ++i) {
    const Count faults = stats.faults_before(i, red.pif.deadline);
    const bool ok = faults <= red.pif.bounds[i];
    all_ok = all_ok && ok;
    std::printf("  core %u (s=%u): %llu faults, bound %llu  %s\n", i,
                red.values[i], static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(red.pif.bounds[i]),
                ok ? "OK (met with equality)" : "VIOLATED");
  }
  std::printf("=> %s\n\n", all_ok ? "the 3-partition certifies the PIF instance"
                                  : "certificate failed?!");

  // An oblivious policy has no idea which sequences should share cells.
  SharedStrategy lru(make_policy_factory("lru"));
  Simulator sim(red.pif.base.sim_config());
  const RunStats lru_stats = sim.run(red.pif.base.requests, lru);
  std::printf("shared LRU on the same instance: within bounds? %s\n\n",
              lru_stats.within_bounds_at(red.pif.deadline, red.pif.bounds)
                  ? "yes (lucky)"
                  : "no — finding the grouping IS the 3-PARTITION problem");

  // The NO instance: {4,4,4,4,4,6}, B=13 — triples only reach 12 or 14.
  const KPartitionInstance no_inst = smallest_no_instance_3partition();
  std::printf("NO instance: S = {4,4,4,4,4,6}, B = 13 -> solver says: %s\n",
              solve_kpartition(no_inst) ? "solvable?!" : "no 3-partition");
  std::printf("(and by Theorem 2, the reduced PIF instance is infeasible:\n"
              " deciding it is exactly as hard as 3-PARTITION — NP-complete.)\n");
  return all_ok ? 0 : 1;
}
