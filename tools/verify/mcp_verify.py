#!/usr/bin/env python3
"""mcp-verify — the repo's concurrency & determinism static analyzer.

Part of the checked-build analysis matrix (DESIGN.md section 10).  Generic
tools (clang-tidy, -Wthread-safety) check generic properties; mcp-verify
enforces the *repo-specific* invariants behind the bit-identical-results
guarantee, plus the four original project lint rules it absorbed from
scripts/lint_project.py (which now delegates here, so the rule sets cannot
drift apart).

Rules (exemptions and scopes live in tools/verify/rules.toml — an
exemption is checked-in data reviewed like code, not a lint tweak):

  rng             no rand() / std::random_device outside core/rng.hpp.
  builtin         no __builtin_* where C++20 <bit> has the portable form.
  hot-path        no std::function / naked new in engine hot paths.
  console         no console writes under src/ outside src/lab.
  unordered-iter  no iteration over unordered_map/unordered_set in files
                  on the declared emission/merge/serialization paths
                  (offline merge, checkpoint writer, wire encode, lab
                  JSONL) — hash iteration order feeding a merge or an
                  output stream silently breaks bit-identical results.
  wall-clock      no wall-clock reads (chrono::system_clock, time(),
                  gettimeofday, localtime, CLOCK_REALTIME) outside
                  src/lab and declared stats-timing sites — wall time in
                  an engine is nondeterminism by construction.
                  steady_clock and thread-CPU clocks are fine.
  atomic-order    every std::atomic load/store/RMW/wait in src/service and
                  src/core/thread_pool.* names an explicit memory_order —
                  a defaulted seq_cst is almost always an unexamined
                  ordering claim; make the claim visible.
  alloc-guard     registry-driven AllocGuard coverage: every declared hot
                  kernel still arms its guard in src/ and is exercised by
                  the declared test (the sentry proves the hot path stays
                  allocation-free only for kernels that actually run under
                  a guard somewhere in the suite).

Backends: libclang (python clang bindings) when importable AND a usable
library is found, else a tokenizer backend (string/comment-stripping +
bracket matching) with identical rule semantics.  Mirrors
scripts/run_clang_tidy.sh's graceful-degrade convention: absence of LLVM
tooling weakens precision, never skips enforcement.

Usage:
  tools/verify/mcp_verify.py                 # all rules, tracked tree
  tools/verify/mcp_verify.py FILES...        # all rules, specific files
  tools/verify/mcp_verify.py --rules rng,console [FILES...]
  tools/verify/mcp_verify.py --selftest      # fixture corpus assertions
  tools/verify/mcp_verify.py --list-rules
"""
from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys
import tomllib

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DEFAULT_RULES_FILE = pathlib.Path(__file__).resolve().parent / "rules.toml"

LINT_SUFFIXES = {".hpp", ".cpp"}
LINT_ROOTS = ("src", "tests", "bench", "examples")
# The fixture corpus is data, not code: it exists to *fail* rules.
FIXTURE_PREFIX = "tests/lint/"

ALL_RULES = ("rng", "builtin", "hot-path", "console", "unordered-iter",
             "wall-clock", "atomic-order", "alloc-guard")

# --- text preprocessing ------------------------------------------------------

RE_LINE_COMMENT = re.compile(r"//.*$", re.MULTILINE)
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')
RE_CHAR = re.compile(r"'(?:[^'\\]|\\.)'")
RE_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_noise(text: str) -> str:
    """Blanks comments, string and char literals, preserving line structure
    so offsets still map to the original line numbers."""

    def blank(match: re.Match[str]) -> str:
        return "".join("\n" if c == "\n" else " " for c in match.group(0))

    text = RE_BLOCK_COMMENT.sub(blank, text)
    text = RE_LINE_COMMENT.sub(blank, text)
    text = RE_STRING.sub('""', text)
    text = RE_CHAR.sub("''", text)
    return text


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_angle(text: str, open_pos: int) -> int:
    """Returns the offset just past the `>` matching the `<` at open_pos,
    or -1 when unbalanced (template-vs-comparison ambiguity is a non-issue
    in the type positions this is applied to)."""
    depth = 0
    i = open_pos
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1
        i += 1
    return -1


RE_IDENT = re.compile(r"[A-Za-z_]\w*")


def next_token(text: str, pos: int) -> tuple[str, int]:
    """(token, offset) of the next lexical token at/after pos ('' at EOF)."""
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        return "", pos
    m = RE_IDENT.match(text, pos)
    if m:
        return m.group(0), pos
    return text[pos], pos


def declared_names(text: str, type_pattern: re.Pattern[str],
                   aliases: set[str] | None = None) -> set[str]:
    """Names of variables/members declared with a type matching
    `type_pattern` (template argument lists bracket-matched, declarations
    may span lines), plus declarations via the given alias names."""
    names: set[str] = set()
    for m in type_pattern.finditer(text):
        pos = m.end()
        token, tpos = next_token(text, pos)
        if token == "<":
            pos = match_angle(text, tpos)
            if pos < 0:
                continue
            token, tpos = next_token(text, pos)
        # Skip ref/pointer declarators; stop on scope/member uses.
        while token in ("&", "*", "const"):
            token, tpos = next_token(text, tpos + len(token))
        if token == ":" or token == "(" or not RE_IDENT.fullmatch(token):
            continue  # `unordered_map<...>::iterator`, casts, etc.
        names.add(token)
    for alias in aliases or ():
        for m in re.finditer(
                rf"\b{re.escape(alias)}\b(?:\s*[&*])*\s+([A-Za-z_]\w*)",
                text):
            names.add(m.group(1))
    return names


def collect_aliases(text: str, type_pattern: re.Pattern[str]) -> set[str]:
    """using X = ...matching-type...;  /  typedef ...matching-type... X;"""
    aliases: set[str] = set()
    for m in re.finditer(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]*);", text):
        if type_pattern.search(m.group(2)):
            aliases.add(m.group(1))
    for m in re.finditer(r"\btypedef\s+([^;]*)\s([A-Za-z_]\w*)\s*;", text):
        if type_pattern.search(m.group(1)):
            aliases.add(m.group(2))
    return aliases


# --- backends ----------------------------------------------------------------


def libclang_available() -> bool:
    try:
        import clang.cindex  # type: ignore
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def libclang_unordered_iter_hits(path: pathlib.Path) -> list[int] | None:
    """AST-precise range-for detection: lines with a CXXForRangeStmt whose
    range type names an unordered container.  None on any parse problem
    (caller falls back to the tokenizer)."""
    try:
        import clang.cindex as ci  # type: ignore
        tu = ci.Index.create().parse(
            str(path), args=["-std=c++20", f"-I{REPO / 'src'}"])
        hits: list[int] = []

        def visit(node: "ci.Cursor") -> None:
            if node.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                if children and "unordered_" in (
                        children[0].type.get_canonical().spelling):
                    hits.append(node.location.line)
            for child in node.get_children():
                if child.location.file and \
                        child.location.file.name == str(path):
                    visit(child)

        visit(tu.cursor)
        return hits
    except Exception:
        return None


# --- the rules ---------------------------------------------------------------

RE_RAND = re.compile(r"\b(?:std::)?random_device\b|(?<![\w:])rand\s*\(\s*\)")
RE_BUILTIN = re.compile(
    r"__builtin_(?:popcount(?:ll?)?|clz(?:ll?)?|ctz(?:ll?)?|"
    r"bswap(?:16|32|64)|rotateleft|rotateright)\b")
RE_STD_FUNCTION = re.compile(r"\bstd::function\s*<")
RE_NAKED_NEW = re.compile(r"(?<![\w:])new\s+[\w:(<]")
RE_OPERATOR_NEW = re.compile(r"operator\s+new")
RE_CONSOLE = re.compile(
    r"#\s*include\s*<iostream>|\bstd::(?:cout|cerr|clog)\b|"
    r"(?<![\w:])(?:fprintf|printf|puts|fputs)\s*\(")

RE_UNORDERED_TYPE = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set)\b")
RE_RANGE_FOR = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)", re.DOTALL)
# Only begin()/cbegin() mark the start of an iteration; a lone end() is the
# ubiquitous (and order-safe) `it != m.end()` find-idiom comparison.
RE_ITER_CALL = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")
RE_TRAILING_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")

RE_WALL_CLOCK = re.compile(
    r"\bsystem_clock\b|(?<![\w:])time\s*\(|\bgettimeofday\b|"
    r"\blocaltime\b|\bgmtime\b|\bmktime\b|(?<![\w:])clock\s*\(\s*\)|"
    r"\bCLOCK_REALTIME\b")

RE_ATOMIC_TYPE = re.compile(r"\bstd\s*::\s*atomic\b")
ATOMIC_ORDERED_METHODS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    "wait|compare_exchange_weak|compare_exchange_strong|test_and_set|clear")
RE_ATOMIC_CALL = re.compile(
    rf"([A-Za-z_]\w*)\s*(?:\.|->)\s*({ATOMIC_ORDERED_METHODS})\s*(\()")
RE_HAS_ORDER = re.compile(r"\bmemory_order")  # memory_order_relaxed etc.


class RuleConfig:
    """One rule's scope + exemptions, resolved from rules.toml."""

    def __init__(self, table: dict):
        self.exempt: set[str] = set(table.get("exempt", []))
        self.exempt_patterns = [re.compile(p)
                                for p in table.get("exempt-patterns", [])]
        self.paths: set[str] = set(table.get("paths", []))
        self.path_prefixes: tuple[str, ...] = tuple(
            table.get("path-prefixes", []))
        self.allowed_prefixes: tuple[str, ...] = tuple(
            table.get("allowed-prefixes", []))
        self.identifier_exempt: set[tuple[str, str]] = {
            (e["file"], e["identifier"])
            for e in table.get("identifier-exempt", [])}
        self.kernels: list[dict] = table.get("kernel", [])

    def file_exempt(self, rel: str) -> bool:
        return rel in self.exempt or any(p.match(rel)
                                         for p in self.exempt_patterns)

    def in_scope(self, rel: str) -> bool:
        return rel in self.paths or rel.startswith(self.path_prefixes or ())


class Violation:
    def __init__(self, rel: str, line: int, rule: str, msg: str):
        self.rel, self.line, self.rule, self.msg = rel, line, rule, msg

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.msg}"


def check_rng(rel: str, text: str, cfg: RuleConfig) -> list[Violation]:
    if cfg.file_exempt(rel):
        return []
    return [Violation(rel, line_of(text, m.start()), "rng",
                      "rand()/std::random_device outside core/rng.hpp "
                      "(use the seed-stable mcp::Rng streams)")
            for m in RE_RAND.finditer(text)]


def check_builtin(rel: str, text: str, cfg: RuleConfig) -> list[Violation]:
    if cfg.file_exempt(rel):
        return []
    return [Violation(rel, line_of(text, m.start()), "builtin",
                      "__builtin_* intrinsic; use the <bit> equivalent "
                      "(std::popcount, std::countr_zero, ...)")
            for m in RE_BUILTIN.finditer(text)]


def check_hot_path(rel: str, text: str, cfg: RuleConfig) -> list[Violation]:
    if not cfg.in_scope(rel) or cfg.file_exempt(rel):
        return []
    out = []
    for m in RE_STD_FUNCTION.finditer(text):
        out.append(Violation(rel, line_of(text, m.start()), "hot-path",
                             "std::function in an engine hot path; use a "
                             "template sink or a concrete callable"))
    for m in RE_NAKED_NEW.finditer(text):
        line_start = text.rfind("\n", 0, m.start()) + 1
        line_end = text.find("\n", m.start())
        line = text[line_start:line_end if line_end >= 0 else len(text)]
        if not RE_OPERATOR_NEW.search(line):
            out.append(Violation(rel, line_of(text, m.start()), "hot-path",
                                 "naked new in an engine hot path; use "
                                 "containers or std::make_unique at the "
                                 "control plane"))
    return out


def check_console(rel: str, text: str, cfg: RuleConfig) -> list[Violation]:
    if not rel.startswith("src/") or rel.startswith(cfg.allowed_prefixes):
        return []
    if cfg.file_exempt(rel):
        return []
    return [Violation(rel, line_of(text, m.start()), "console",
                      "console write outside src/lab (engines report "
                      "through return values and ModelError)")
            for m in RE_CONSOLE.finditer(text)]


def check_unordered_iter(rel: str, text: str, cfg: RuleConfig,
                         path: pathlib.Path | None = None,
                         header_text: str = "",
                         use_libclang: bool = False) -> list[Violation]:
    if not cfg.in_scope(rel) or cfg.file_exempt(rel):
        return []
    combined = header_text + "\n" + text
    aliases = collect_aliases(combined, RE_UNORDERED_TYPE)
    unordered = declared_names(combined, RE_UNORDERED_TYPE, aliases)
    unordered = {n for n in unordered
                 if (rel, n) not in cfg.identifier_exempt}
    if not unordered:
        return []
    out = []
    msg = ("iteration over an unordered container on a declared "
           "emission/merge/serialization path — hash order must never "
           "reach an output or a merge (add a sorted materialization, or "
           "an identifier-exempt entry in tools/verify/rules.toml with a "
           "justification)")
    ast_lines = (libclang_unordered_iter_hits(path)
                 if use_libclang and path is not None else None)
    if ast_lines is not None:
        out.extend(Violation(rel, line, "unordered-iter", msg)
                   for line in ast_lines)
    else:
        for m in RE_RANGE_FOR.finditer(text):
            ident = RE_TRAILING_IDENT.search(m.group(2).strip())
            if ident and ident.group(1) in unordered:
                out.append(Violation(rel, line_of(text, m.start()),
                                     "unordered-iter", msg))
    for m in RE_ITER_CALL.finditer(text):
        if m.group(1) in unordered:
            out.append(Violation(rel, line_of(text, m.start()),
                                 "unordered-iter", msg))
    return out


def check_wall_clock(rel: str, text: str, cfg: RuleConfig) -> list[Violation]:
    if not rel.startswith("src/") or rel.startswith(cfg.allowed_prefixes):
        return []
    if cfg.file_exempt(rel):
        return []
    return [Violation(rel, line_of(text, m.start()), "wall-clock",
                      "wall-clock read outside src/lab (use steady_clock "
                      "for intervals, CLOCK_THREAD_CPUTIME_ID for CPU "
                      "accounting; wall time in an engine is "
                      "nondeterminism)")
            for m in RE_WALL_CLOCK.finditer(text)]


def check_atomic_order(rel: str, text: str, cfg: RuleConfig,
                       scope_texts: dict[str, str]) -> list[Violation]:
    if not cfg.in_scope(rel) or cfg.file_exempt(rel):
        return []
    # Atomics are declared in headers and used in the paired .cpp: collect
    # names from this file and its sibling (mcpd.hpp <-> mcpd.cpp), not the
    # whole scope, so an unrelated file's `next` cannot alias this one's.
    stem = rel.rsplit(".", 1)[0]
    atomics: set[str] = set()
    for other_rel, other_text in scope_texts.items():
        if other_rel.rsplit(".", 1)[0] == stem or other_rel == rel:
            atomics |= declared_names(other_text, RE_ATOMIC_TYPE)
    atomics |= declared_names(text, RE_ATOMIC_TYPE)
    if not atomics:
        return []
    out = []
    for m in RE_ATOMIC_CALL.finditer(text):
        receiver, method, paren = m.group(1), m.group(2), m.start(3)
        if receiver not in atomics:
            continue
        depth, i = 0, paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        args = text[paren + 1:i]
        if not RE_HAS_ORDER.search(args):
            out.append(Violation(
                rel, line_of(text, m.start()), "atomic-order",
                f"{receiver}.{method}(...) without an explicit "
                "memory_order — name the ordering claim (relaxed is a "
                "claim too)"))
    for name in atomics:
        # Qualified accesses (obj.name / obj->name) are always checked.
        # Bare-identifier forms are checked only for `_`-suffixed names
        # (the repo's member naming convention): a plain local that shadows
        # an atomic field's name (`MpscHook* next = tail->next.load(...)`)
        # must not alias the member check.
        esc = re.escape(name)
        qual = r"[A-Za-z_]\w*\s*(?:\.|->)\s*"
        ops = r"(?:\+\+|--|[+\-|&^]=|=(?!=))"
        parts = [rf"(?:\+\+|--)\s*(?:{qual})?{esc}\b"
                 if name.endswith("_") else
                 rf"(?:\+\+|--)\s*{qual}{esc}\b",
                 rf"{qual}{esc}\s*{ops}"]
        if name.endswith("_"):
            parts.append(rf"^\s*{esc}\s*{ops}")
        pattern = re.compile("(?m)" + "|".join(f"(?:{p})" for p in parts))
        for m in pattern.finditer(text):
            line_start = text.rfind("\n", 0, m.start()) + 1
            line_end = text.find("\n", m.start())
            line = text[line_start:line_end if line_end >= 0 else len(text)]
            if "atomic" in line:
                continue  # declaration with initializer
            out.append(Violation(
                rel, line_of(text, m.start()), "atomic-order",
                f"operator access to std::atomic `{name}` (implicit "
                "seq_cst) — spell it load/store/fetch_* with an explicit "
                "memory_order"))
    return out


def check_alloc_guard_registry(cfg: RuleConfig,
                               repo: pathlib.Path) -> list[Violation]:
    """Registry-driven coverage: each declared hot kernel must (a) still
    arm its AllocGuard in src/ and (b) be exercised by its declared test."""
    out = []
    for kernel in cfg.kernels:
        name = kernel.get("name", "<unnamed>")
        for role in ("guard", "test"):
            file_key, pat_key = f"{role}-file", f"{role}-pattern"
            rel = kernel.get(file_key, "")
            pattern = kernel.get(pat_key, "")
            path = repo / rel
            if not rel or not path.is_file():
                out.append(Violation(
                    "tools/verify/rules.toml", 0, "alloc-guard",
                    f"kernel '{name}': {file_key} '{rel}' does not exist "
                    "(stale registry entry)"))
                continue
            if not re.search(pattern, path.read_text()):
                out.append(Violation(
                    rel, 0, "alloc-guard",
                    f"kernel '{name}': pattern '{pattern}' not found — "
                    f"the {'guard is gone' if role == 'guard' else 'test no longer exercises the guarded kernel'}"))
    return out


# --- exemption staleness -----------------------------------------------------


def check_stale_exemptions(rules: dict[str, RuleConfig],
                           repo: pathlib.Path) -> list[Violation]:
    """Every file named in an exemption or scope list must still exist:
    exemptions are review decisions about specific code, and a decision
    about deleted code is stale data that silently widens the next match."""
    out = []
    for rule_name, cfg in rules.items():
        referenced = set(cfg.exempt) | set(cfg.paths)
        referenced |= {f for (f, _ident) in cfg.identifier_exempt}
        for rel in sorted(referenced):
            if not (repo / rel).is_file():
                out.append(Violation(
                    "tools/verify/rules.toml", 0, rule_name,
                    f"stale exemption/scope entry: '{rel}' no longer "
                    "exists — remove the entry"))
    return out


# --- driver ------------------------------------------------------------------


def tracked_files(repo: pathlib.Path) -> list[pathlib.Path]:
    result = subprocess.run(
        ["git", "ls-files", "--", *LINT_ROOTS],
        cwd=repo, capture_output=True, text=True, check=True).stdout
    return [repo / line for line in result.splitlines()
            if pathlib.Path(line).suffix in LINT_SUFFIXES
            and not line.startswith(FIXTURE_PREFIX)]


def load_rules(rules_file: pathlib.Path) -> dict[str, RuleConfig]:
    with open(rules_file, "rb") as fh:
        data = tomllib.load(fh)
    unknown = set(data) - set(ALL_RULES)
    if unknown:
        raise SystemExit(f"mcp-verify: unknown rule tables in "
                         f"{rules_file}: {sorted(unknown)}")
    return {name: RuleConfig(data.get(name, {})) for name in ALL_RULES}


def run_rules(files: list[pathlib.Path], rules: dict[str, RuleConfig],
              selected: list[str], repo: pathlib.Path,
              use_libclang: bool) -> list[Violation]:
    texts: dict[str, str] = {}
    for path in files:
        rel = path.resolve().relative_to(repo).as_posix() \
            if path.resolve().is_relative_to(repo) else path.as_posix()
        texts[rel] = strip_noise(path.read_text())

    atomic_scope = {rel: text for rel, text in texts.items()
                    if "atomic-order" in selected
                    and rules["atomic-order"].in_scope(rel)}

    violations: list[Violation] = []
    for rel, text in texts.items():
        if "rng" in selected:
            violations += check_rng(rel, text, rules["rng"])
        if "builtin" in selected:
            violations += check_builtin(rel, text, rules["builtin"])
        if "hot-path" in selected:
            violations += check_hot_path(rel, text, rules["hot-path"])
        if "console" in selected:
            violations += check_console(rel, text, rules["console"])
        if "unordered-iter" in selected:
            header_rel = rel.rsplit(".", 1)[0] + ".hpp"
            header_text = texts.get(header_rel, "") \
                if header_rel != rel else ""
            violations += check_unordered_iter(
                rel, text, rules["unordered-iter"], repo / rel, header_text,
                use_libclang)
        if "wall-clock" in selected:
            violations += check_wall_clock(rel, text, rules["wall-clock"])
        if "atomic-order" in selected:
            violations += check_atomic_order(rel, text,
                                             rules["atomic-order"],
                                             atomic_scope)
    if "alloc-guard" in selected:
        violations += check_alloc_guard_registry(rules["alloc-guard"], repo)
    violations += [v for v in check_stale_exemptions(rules, repo)
                   if v.rule in selected]
    violations.sort(key=lambda v: (v.rel, v.line, v.rule))
    return violations


# --- selftest ----------------------------------------------------------------


def selftest(repo: pathlib.Path, use_libclang: bool) -> int:
    """Asserts each rule fires on its failure fixture and stays silent on
    its pass fixture (tests/lint/; registered in ctest as
    mcp_verify_selftest)."""
    corpus = repo / "tests" / "lint"
    scoped = RuleConfig({"paths": [f"src/lint_fixture.cpp"],
                         "path-prefixes": ["src/"]})
    failures: list[str] = []

    def expect(rule: str, got: list[Violation], want_fire: bool,
               fixture: str) -> None:
        fired = [v for v in got if v.rule == rule]
        wrong_rule = [v for v in got if v.rule != rule]
        if want_fire and not fired:
            failures.append(f"{rule}: did not fire on {fixture}")
        if not want_fire and fired:
            failures.append(f"{rule}: fired on clean fixture {fixture}: "
                            f"{fired[0]}")
        if wrong_rule:
            failures.append(f"{rule}: cross-fired {wrong_rule[0].rule} "
                            f"on {fixture}")

    def run_text_rule(rule: str, check, cfg: RuleConfig) -> None:
        for verdict, suffix in (("fail", True), ("pass", False)):
            fixture = corpus / f"{rule.replace('-', '_')}_{verdict}.cpp"
            text = strip_noise(fixture.read_text())
            # Fixtures are linted as if they sat on an in-scope src/ path.
            expect(rule, check("src/lint_fixture.cpp", text, cfg), suffix,
                   fixture.name)

    run_text_rule("rng", check_rng, RuleConfig({}))
    run_text_rule("builtin", check_builtin, RuleConfig({}))
    run_text_rule("hot-path", check_hot_path, scoped)
    run_text_rule("console", check_console, RuleConfig({}))
    run_text_rule("unordered-iter",
                  lambda rel, text, cfg: check_unordered_iter(
                      rel, text, cfg), scoped)
    run_text_rule("wall-clock", check_wall_clock, RuleConfig({}))
    run_text_rule("atomic-order",
                  lambda rel, text, cfg: check_atomic_order(
                      rel, text, cfg, {}), scoped)

    for verdict, want in (("fail", True), ("pass", False)):
        registry = corpus / f"alloc_guard_{verdict}.toml"
        with open(registry, "rb") as fh:
            cfg = RuleConfig(tomllib.load(fh).get("alloc-guard", {}))
        got = check_alloc_guard_registry(cfg, repo)
        expect("alloc-guard", got, want, registry.name)

    # Stale-exemption reporting is part of the contract: a rules file
    # naming a vanished file must produce an error.
    stale_cfg = {"rng": RuleConfig(
        {"exempt": ["src/no/such/file_gone.cpp"]})}
    if not check_stale_exemptions(stale_cfg, repo):
        failures.append("stale-exemption: vanished file not reported")

    # The live rules file must itself be stale-free and the tracked tree
    # clean — the selftest is the canary for both drifting.
    rules = load_rules(DEFAULT_RULES_FILE)
    live = run_rules(tracked_files(repo), rules, list(ALL_RULES), repo,
                     use_libclang)
    for violation in live:
        failures.append(f"tree-not-clean: {violation}")

    for failure in failures:
        print(f"mcp-verify selftest: FAIL {failure}")
    if failures:
        return 1
    print(f"mcp-verify selftest: OK ({len(ALL_RULES)} rules x "
          "fail+pass fixtures, stale-exemption check, clean tree)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="mcp-verify", add_help=True)
    parser.add_argument("files", nargs="*")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated subset of rules to run")
    parser.add_argument("--rules-file", default=str(DEFAULT_RULES_FILE))
    parser.add_argument("--backend", choices=("auto", "tokenizer",
                                              "libclang"), default="auto")
    parser.add_argument("--selftest", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        print("\n".join(ALL_RULES))
        return 0

    if args.backend == "libclang":
        use_libclang = True
        if not libclang_available():
            raise SystemExit("mcp-verify: --backend libclang requested but "
                             "python clang bindings are unusable")
    elif args.backend == "tokenizer":
        use_libclang = False
    else:
        use_libclang = libclang_available()

    if args.selftest:
        return selftest(REPO, use_libclang)

    selected = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = set(selected) - set(ALL_RULES)
    if unknown:
        raise SystemExit(f"mcp-verify: unknown rules {sorted(unknown)} "
                         f"(see --list-rules)")

    rules = load_rules(pathlib.Path(args.rules_file))
    files = ([pathlib.Path(f).resolve() for f in args.files]
             if args.files else tracked_files(REPO))
    violations = run_rules(files, rules, selected, REPO, use_libclang)
    for violation in violations:
        print(violation)
    if violations:
        print(f"mcp-verify: {len(violations)} violation(s) "
              f"[{'libclang' if use_libclang else 'tokenizer'} backend]",
              file=sys.stderr)
        return 1
    print(f"mcp-verify: OK ({len(files)} files, {len(selected)} rules, "
          f"{'libclang' if use_libclang else 'tokenizer'} backend)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
